package mach

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"splash2/internal/memsys"
)

func tinyMachine(t *testing.T, procs int, model MemModel) *Machine {
	t.Helper()
	m, err := New(Config{Procs: procs, CacheSize: 4096, Assoc: 2, LineSize: 64, MemModel: model})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultsApplied(t *testing.T) {
	m := MustNew(Config{Procs: 2})
	cfg := m.Config()
	if cfg.Procs != 2 {
		t.Fatalf("procs=%d", cfg.Procs)
	}
	mc := m.memCfg
	if mc.CacheSize != memsys.DefaultCacheSize || mc.LineSize != 64 || mc.OverheadBytes != 8 {
		t.Fatalf("defaults not applied: %+v", mc)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := New(Config{Procs: 3, CacheSize: 100, LineSize: 64}); err == nil {
		t.Fatal("bad cache size accepted")
	}
}

func TestProcCountersAndClock(t *testing.T) {
	m := tinyMachine(t, 1, FullMem)
	a := m.NewF64(8, true, Blocked())
	m.Run(func(p *Proc) {
		p.Instr(10)
		p.Flop(5)
		a.Set(p, 0, 1.5)
		if a.Get(p, 0) != 1.5 {
			t.Error("array value lost")
		}
	})
	st := m.Snapshot()
	c := st.Procs[0]
	if c.Instr != 17 { // 10 + 5 flops + 1 write + 1 read
		t.Fatalf("instr=%d, want 17", c.Instr)
	}
	if c.Flops != 5 || c.Reads != 1 || c.Writes != 1 {
		t.Fatalf("counters: %+v", c)
	}
	if c.SharedReads != 1 || c.SharedWrites != 1 {
		t.Fatalf("shared counters: %+v", c)
	}
	if st.Time != 17 {
		t.Fatalf("time=%d, want 17", st.Time)
	}
}

func TestPrivateAllocationNotCountedShared(t *testing.T) {
	m := tinyMachine(t, 2, FullMem)
	priv := m.NewF64(8, false, Owner(0))
	m.RunOne(func(p *Proc) {
		priv.Set(p, 0, 1)
		priv.Get(p, 0)
	})
	c := m.Snapshot().Procs[0]
	if c.SharedReads != 0 || c.SharedWrites != 0 {
		t.Fatalf("private refs counted as shared: %+v", c)
	}
	if c.Reads != 1 || c.Writes != 1 {
		t.Fatalf("refs missing: %+v", c)
	}
}

func TestPlacements(t *testing.T) {
	if h := Blocked()(0, 10, 2); h != 0 {
		t.Errorf("blocked first line home %d", h)
	}
	if h := Blocked()(9, 10, 2); h != 1 {
		t.Errorf("blocked last line home %d", h)
	}
	if h := Interleaved()(5, 10, 4); h != 1 {
		t.Errorf("interleaved home %d", h)
	}
	if h := Owner(3)(7, 10, 8); h != 3 {
		t.Errorf("owner home %d", h)
	}
}

func TestAllocLineAligned(t *testing.T) {
	m := tinyMachine(t, 2, FullMem)
	a := m.Alloc(1, true, Blocked())
	b := m.Alloc(1, true, Blocked())
	if b-a != Addr(m.LineSize()) {
		t.Fatalf("allocations not line-aligned: %d %d", a, b)
	}
}

func TestBarrierJoinsClocks(t *testing.T) {
	m := tinyMachine(t, 4, CountOnly)
	b := m.NewBarrier()
	m.Run(func(p *Proc) {
		p.Instr(10 * (p.ID + 1)) // imbalanced work: 10,20,30,40
		b.Wait(p)
		if p.Time() != 40 {
			t.Errorf("proc %d time after barrier = %d, want 40", p.ID, p.Time())
		}
	})
	st := m.Snapshot()
	if st.Time != 40 {
		t.Fatalf("machine time %d, want 40", st.Time)
	}
	var maxWait uint64
	for _, c := range st.Procs {
		if c.Barriers != 1 {
			t.Fatalf("barrier count %d", c.Barriers)
		}
		if c.SyncWait > maxWait {
			maxWait = c.SyncWait
		}
	}
	if maxWait != 30 { // proc 0 waited 40-10
		t.Fatalf("max wait %d, want 30", maxWait)
	}
}

func TestBarrierReusable(t *testing.T) {
	m := tinyMachine(t, 3, CountOnly)
	b := m.NewBarrier()
	m.Run(func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Instr(p.ID + 1)
			b.Wait(p)
		}
	})
	for _, c := range m.Snapshot().Procs {
		if c.Barriers != 5 {
			t.Fatalf("barriers=%d, want 5", c.Barriers)
		}
	}
}

func TestLockSerializes(t *testing.T) {
	m := tinyMachine(t, 4, CountOnly)
	var l Lock
	m.Run(func(p *Proc) {
		l.Acquire(p)
		p.Instr(100) // critical section
		l.Release(p)
	})
	st := m.Snapshot()
	// Four 100-cycle critical sections must serialize: total time ≥ 400.
	if st.Time < 400 {
		t.Fatalf("lock did not serialize: T=%d", st.Time)
	}
	var locks uint64
	for _, c := range st.Procs {
		locks += c.Locks
	}
	if locks != 4 {
		t.Fatalf("lock count %d", locks)
	}
}

func TestFlagPropagatesTime(t *testing.T) {
	m := tinyMachine(t, 2, CountOnly)
	var f Flag
	m.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Instr(500)
			f.Set(p)
		} else {
			f.Wait(p)
			if p.Time() < 500 {
				t.Errorf("waiter time %d < setter's 500", p.Time())
			}
			if p.c.Pauses != 1 {
				t.Errorf("pauses=%d", p.c.Pauses)
			}
		}
	})
}

func TestFlagSetBeforeWaitDoesNotBlock(t *testing.T) {
	m := tinyMachine(t, 1, CountOnly)
	var f Flag
	m.RunOne(func(p *Proc) {
		f.Set(p)
		f.Set(p) // idempotent
		if !f.IsSet() {
			t.Error("flag not set")
		}
		f.Wait(p)
	})
}

func TestEpochResetsMeasurement(t *testing.T) {
	m := tinyMachine(t, 2, FullMem)
	a := m.NewF64(64, true, Blocked())
	b := m.NewBarrier()
	m.Run(func(p *Proc) {
		a.Get(p, p.ID) // cold misses before the epoch
		m.Epoch(p, b)
		a.Get(p, p.ID) // warm hits after
	})
	st := m.Snapshot()
	ag := st.Mem.Aggregate()
	if ag.TotalMisses() != 0 {
		t.Fatalf("post-epoch misses: %d", ag.TotalMisses())
	}
	pc := Aggregate(st.Procs)
	if pc.Reads != 2 {
		t.Fatalf("post-epoch reads=%d, want 2", pc.Reads)
	}
}

func TestSnapshotMatchesMemsys(t *testing.T) {
	m := tinyMachine(t, 2, FullMem)
	a := m.NewF64(32, true, Blocked())
	m.Run(func(p *Proc) {
		for i := 0; i < 16; i++ {
			a.Get(p, i)
		}
	})
	st := m.Snapshot()
	memAgg := st.Mem.Aggregate()
	procAgg := Aggregate(st.Procs)
	if memAgg.Reads != procAgg.Reads {
		t.Fatalf("memsys reads %d != proc reads %d", memAgg.Reads, procAgg.Reads)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCountOnlySkipsMemsys(t *testing.T) {
	m := tinyMachine(t, 2, CountOnly)
	a := m.NewF64(8, true, Blocked())
	m.Run(func(p *Proc) { a.Get(p, 0) })
	st := m.Snapshot()
	if len(st.Mem.Procs) != 0 {
		t.Fatal("CountOnly produced memory stats")
	}
	if Aggregate(st.Procs).Reads != 2 {
		t.Fatalf("reads=%d", Aggregate(st.Procs).Reads)
	}
}

func TestTaskQueuesDrainAll(t *testing.T) {
	m := tinyMachine(t, 4, CountOnly)
	tq := m.NewTaskQueues(256)
	var mu sync.Mutex
	seen := map[int]bool{}
	m.Run(func(p *Proc) {
		for i := 0; i < 32; i++ {
			tq.Push(p, p.ID*1000+i)
		}
	})
	m.Run(func(p *Proc) {
		for {
			task, ok := tq.PopOrSteal(p)
			if !ok {
				return
			}
			mu.Lock()
			if seen[task] {
				t.Errorf("task %d popped twice", task)
			}
			seen[task] = true
			mu.Unlock()
			tq.Done(p)
		}
	})
	if len(seen) != 128 {
		t.Fatalf("drained %d tasks, want 128", len(seen))
	}
	if tq.Outstanding() != 0 {
		t.Fatalf("outstanding=%d", tq.Outstanding())
	}
}

func TestTaskQueuesStealingBalances(t *testing.T) {
	m := tinyMachine(t, 4, CountOnly)
	tq := m.NewTaskQueues(1024)
	var counts [4]int
	var mu sync.Mutex
	m.Run(func(p *Proc) {
		if p.ID == 0 { // all work starts on one queue
			for i := 0; i < 200; i++ {
				tq.Push(p, i)
			}
		}
	})
	m.Run(func(p *Proc) {
		for {
			_, ok := tq.PopOrSteal(p)
			if !ok {
				return
			}
			p.Instr(50)
			tq.Done(p)
		}
	})
	m.Run(func(p *Proc) {
		mu.Lock()
		counts[p.ID] = int(p.c.Locks)
		mu.Unlock()
	})
	total := 0
	stealers := 0
	for i, c := range counts {
		total += c
		if i > 0 && c > 0 {
			stealers++
		}
	}
	if stealers == 0 {
		t.Fatal("no processor ever stole work")
	}
	_ = total
}

func TestTaskQueueSubtasksTerminate(t *testing.T) {
	m := tinyMachine(t, 2, CountOnly)
	tq := m.NewTaskQueues(512)
	var processed sync.Map
	m.Run(func(p *Proc) {
		if p.ID == 0 {
			tq.Push(p, 1) // root task spawns children 2..20
		}
	})
	m.Run(func(p *Proc) {
		for {
			task, ok := tq.PopOrSteal(p)
			if !ok {
				return
			}
			processed.Store(task, true)
			if task == 1 {
				for c := 2; c <= 20; c++ {
					tq.Push(p, c)
				}
			}
			tq.Done(p)
		}
	})
	n := 0
	processed.Range(func(_, _ any) bool { n++; return true })
	if n != 20 {
		t.Fatalf("processed %d tasks, want 20", n)
	}
}

// Property: under PRAM timing, machine time with 1 processor equals the
// serial instruction count, and counters are exact for any random program.
func TestPRAMTimeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MustNew(Config{Procs: 1, CacheSize: 1024, Assoc: 2, LineSize: 64, MemModel: FullMem})
		a := m.NewF64(64, true, Blocked())
		var want uint64
		m.RunOne(func(p *Proc) {
			for i := 0; i < 200; i++ {
				switch rng.Intn(3) {
				case 0:
					n := rng.Intn(10) + 1
					p.Instr(n)
					want += uint64(n)
				case 1:
					a.Get(p, rng.Intn(64))
					want++
				case 2:
					a.Set(p, rng.Intn(64), 1)
					want++
				}
			}
		})
		return m.Snapshot().Time == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: barrier time equality — after any barrier, all clocks agree
// and equal the max arrival clock.
func TestBarrierMaxProperty(t *testing.T) {
	f := func(work [8]uint8) bool {
		m := MustNew(Config{Procs: 4, CacheSize: 1024, Assoc: 2, LineSize: 64, MemModel: CountOnly})
		b := m.NewBarrier()
		var mu sync.Mutex
		times := map[uint64]bool{}
		var max uint64
		m.Run(func(p *Proc) {
			w := uint64(work[p.ID]) + 1
			p.Instr(int(w))
			mu.Lock()
			if w > max {
				max = w
			}
			mu.Unlock()
			b.Wait(p)
			mu.Lock()
			times[p.Time()] = true
			mu.Unlock()
		})
		return len(times) == 1 && times[max]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReadNWriteN(t *testing.T) {
	m := tinyMachine(t, 1, FullMem)
	base := m.Alloc(16, true, Blocked())
	m.RunOne(func(p *Proc) {
		p.WriteN(base, 8)
		p.ReadN(base, 8)
	})
	c := m.Snapshot().Procs[0]
	if c.Reads != 8 || c.Writes != 8 {
		t.Fatalf("counters %+v", c)
	}
}

func TestC128ArrayTwoWordRefs(t *testing.T) {
	m := tinyMachine(t, 1, FullMem)
	a := m.NewC128(4, true, Blocked())
	m.RunOne(func(p *Proc) {
		a.Set(p, 1, 2+3i)
		if a.Get(p, 1) != 2+3i {
			t.Error("complex value lost")
		}
	})
	c := m.Snapshot().Procs[0]
	if c.Reads != 2 || c.Writes != 2 {
		t.Fatalf("complex refs: %+v", c)
	}
}

func TestRegionAddresses(t *testing.T) {
	m := tinyMachine(t, 2, FullMem)
	r := m.NewRegion(32, true, Interleaved())
	if r.WordAddr(4)-r.WordAddr(0) != 32 {
		t.Fatalf("word addressing wrong")
	}
}
