package mach

import (
	"sync/atomic"
	"time"
)

// Logical-clock window throttling.
//
// Simulated processors are goroutines whose real-time scheduling is
// unrelated to their logical clocks: on a host with few cores, one
// goroutine can race ahead in real time and — through dynamic decisions
// like task stealing — absorb work that another processor would have
// executed much earlier in logical time, collapsing the simulated
// parallelism. The classic conservative fix is a simulation window: a
// processor whose logical clock is more than `window` cycles ahead of the
// slowest *active* processor yields until the laggards catch up.
// Processors blocked at synchronization points (barriers, flags, empty
// task queues) or finished with their phase are "parked" and excluded
// from the minimum, so the window can always advance.
//
// Throttling happens only at safe points where the caller holds no locks
// (the top of TaskQueues.PopOrSteal); clock publication is a cheap atomic
// store on every instruction.

// defaultWindow is the allowed clock divergence in cycles: large enough
// to keep real concurrency, small enough that stealing decisions stay
// close to what a logically-synchronous machine would do.
const defaultWindow = 4096

// windowState is embedded in Machine.
type windowState struct {
	clocks []atomic.Uint64
	parked []atomic.Bool
	window uint64
}

func (w *windowState) init(procs int) {
	w.clocks = make([]atomic.Uint64, procs)
	w.parked = make([]atomic.Bool, procs)
	w.window = defaultWindow
	for i := range w.parked {
		w.parked[i].Store(true) // parked until a Run body starts
	}
}

// publish records p's logical clock for window computations.
func (p *Proc) publish() { p.m.win.clocks[p.ID].Store(p.time) }

// park marks p as blocked at a synchronization point (excluded from the
// window minimum); unpark re-activates it. Parking also flushes the
// reference buffer — a parked processor may stay blocked indefinitely,
// and everything it issued must be visible to whoever runs meanwhile
// (or to a quiescent-point reader like Snapshot/FinishRecording).
func (p *Proc) park() {
	p.flushRefs()
	p.m.win.parked[p.ID].Store(true)
}

func (p *Proc) unpark() {
	p.m.win.parked[p.ID].Store(false)
	p.publish()
}

// minActiveClock returns the minimum published clock over non-parked
// processors; ok=false when every processor is parked.
func (m *Machine) minActiveClock() (min uint64, ok bool) {
	min = ^uint64(0)
	for i := range m.win.clocks {
		if m.win.parked[i].Load() {
			continue
		}
		if c := m.win.clocks[i].Load(); c < min {
			min = c
		}
		ok = true
	}
	return min, ok
}

// throttle blocks p (in real time only) while its logical clock is more
// than the window ahead of the slowest active processor. Must be called
// only when p holds no locks.
func (p *Proc) throttle() {
	p.publish()
	for {
		min, ok := p.m.minActiveClock()
		if !ok || p.time <= min+p.m.win.window {
			return
		}
		time.Sleep(20 * time.Microsecond)
	}
}
