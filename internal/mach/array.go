package mach

// Typed shared arrays tie a Go backing slice (the values) to a region of
// the simulated address space (the reference stream). Get/Set issue
// simulated references; Peek/Init touch only the Go values and are meant
// for input construction and result verification outside measurement.

// F64Array is an array of float64 living in simulated memory.
type F64Array struct {
	base Addr
	data []float64
}

// NewF64 allocates an n-element float64 array.
func (m *Machine) NewF64(n int, shared bool, place Placement) *F64Array {
	return &F64Array{base: m.Alloc(n, shared, place), data: make([]float64, n)}
}

// Len returns the element count.
func (a *F64Array) Len() int { return len(a.data) }

// Addr returns the simulated address of element i.
func (a *F64Array) Addr(i int) Addr { return a.base + Addr(i*WordBytes) }

// Get loads element i through the memory system.
func (a *F64Array) Get(p *Proc, i int) float64 {
	p.Read(a.Addr(i))
	return a.data[i]
}

// Set stores element i through the memory system.
func (a *F64Array) Set(p *Proc, i int, v float64) {
	p.Write(a.Addr(i))
	a.data[i] = v
}

// Add performs a read-modify-write of element i.
func (a *F64Array) Add(p *Proc, i int, v float64) {
	p.Read(a.Addr(i))
	p.Write(a.Addr(i))
	a.data[i] += v
}

// Peek reads the Go value without simulation.
func (a *F64Array) Peek(i int) float64 { return a.data[i] }

// Init writes the Go value without simulation (input construction).
func (a *F64Array) Init(i int, v float64) { a.data[i] = v }

// Raw exposes the backing slice for verification code.
func (a *F64Array) Raw() []float64 { return a.data }

// IntArray is an array of int living in simulated memory (one word each).
type IntArray struct {
	base Addr
	data []int
}

// NewInt allocates an n-element integer array.
func (m *Machine) NewInt(n int, shared bool, place Placement) *IntArray {
	return &IntArray{base: m.Alloc(n, shared, place), data: make([]int, n)}
}

// Len returns the element count.
func (a *IntArray) Len() int { return len(a.data) }

// Addr returns the simulated address of element i.
func (a *IntArray) Addr(i int) Addr { return a.base + Addr(i*WordBytes) }

// Get loads element i through the memory system.
func (a *IntArray) Get(p *Proc, i int) int {
	p.Read(a.Addr(i))
	return a.data[i]
}

// Set stores element i through the memory system.
func (a *IntArray) Set(p *Proc, i int, v int) {
	p.Write(a.Addr(i))
	a.data[i] = v
}

// Add performs a read-modify-write of element i and returns the new value.
func (a *IntArray) Add(p *Proc, i, v int) int {
	p.Read(a.Addr(i))
	p.Write(a.Addr(i))
	a.data[i] += v
	return a.data[i]
}

// Peek reads the Go value without simulation.
func (a *IntArray) Peek(i int) int { return a.data[i] }

// Init writes the Go value without simulation.
func (a *IntArray) Init(i, v int) { a.data[i] = v }

// Raw exposes the backing slice for verification code.
func (a *IntArray) Raw() []int { return a.data }

// C128Array is an array of complex128: two consecutive words per element,
// matching the layout of the FFT's complex data points.
type C128Array struct {
	base Addr
	data []complex128
}

// NewC128 allocates an n-element complex array (2n words).
func (m *Machine) NewC128(n int, shared bool, place Placement) *C128Array {
	return &C128Array{base: m.Alloc(2*n, shared, place), data: make([]complex128, n)}
}

// Len returns the element count.
func (a *C128Array) Len() int { return len(a.data) }

// Addr returns the simulated address of element i's real part.
func (a *C128Array) Addr(i int) Addr { return a.base + Addr(2*i*WordBytes) }

// Get loads element i (two word reads).
func (a *C128Array) Get(p *Proc, i int) complex128 {
	p.Read(a.Addr(i))
	p.Read(a.Addr(i) + WordBytes)
	return a.data[i]
}

// Set stores element i (two word writes).
func (a *C128Array) Set(p *Proc, i int, v complex128) {
	p.Write(a.Addr(i))
	p.Write(a.Addr(i) + WordBytes)
	a.data[i] = v
}

// Peek reads the Go value without simulation.
func (a *C128Array) Peek(i int) complex128 { return a.data[i] }

// Init writes the Go value without simulation.
func (a *C128Array) Init(i int, v complex128) { a.data[i] = v }

// Raw exposes the backing slice for verification code.
func (a *C128Array) Raw() []complex128 { return a.data }

// Region is a raw span of simulated memory for object layouts (tree nodes,
// patches, rays): applications compute field addresses themselves.
type Region struct {
	Base  Addr
	Words int
}

// NewRegion allocates a raw region of the given number of words.
func (m *Machine) NewRegion(words int, shared bool, place Placement) Region {
	return Region{Base: m.Alloc(words, shared, place), Words: words}
}

// WordAddr returns the address of word i of the region.
func (r Region) WordAddr(i int) Addr { return r.Base + Addr(i*WordBytes) }
