package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"splash2/internal/fault"
	"splash2/internal/runner"
)

func TestRequestCanonicalDefaults(t *testing.T) {
	cr, err := Request{Kind: KindTable1}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cr.Apps, Suite) {
		t.Errorf("apps = %v, want full suite", cr.Apps)
	}
	if cr.Procs != 32 || cr.Scale != "sweep" || cr.Mode != "live" {
		t.Errorf("defaults = procs %d scale %q mode %q", cr.Procs, cr.Scale, cr.Mode)
	}
	if !reflect.DeepEqual(cr.ProcList, []int{1, 2, 4, 8, 16, 32}) {
		t.Errorf("procList = %v", cr.ProcList)
	}
	if cr.CacheSize != 1<<20 || len(cr.CacheSizes) == 0 || len(cr.LineSizes) == 0 {
		t.Errorf("cache defaults = %d %v %v", cr.CacheSize, cr.CacheSizes, cr.LineSizes)
	}
	// Idempotent: canonicalizing a canonical request is a no-op.
	cr2, err := cr.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cr, cr2) {
		t.Errorf("Canonical not idempotent:\n%+v\n%+v", cr, cr2)
	}
}

func TestRequestCanonicalNormalizesProcList(t *testing.T) {
	cr, err := Request{Kind: KindSpeedups, ProcList: []int{8, 2, 8, 1}}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cr.ProcList, []int{1, 2, 8}) {
		t.Errorf("procList = %v, want sorted dedup [1 2 8]", cr.ProcList)
	}
}

func TestRequestCanonicalRejects(t *testing.T) {
	bad := []struct {
		name string
		req  Request
		want string
	}{
		{"no kind", Request{}, "missing kind"},
		{"bad kind", Request{Kind: "figure9"}, "unknown kind"},
		{"bad app", Request{Kind: KindTable1, Apps: []string{"doom"}}, "doom"},
		{"dup app", Request{Kind: KindTable1, Apps: []string{"fft", "fft"}}, "duplicate app"},
		{"procs high", Request{Kind: KindTable1, Procs: 128}, "out of range"},
		{"procs neg", Request{Kind: KindTable1, Procs: -1}, "out of range"},
		{"plist high", Request{Kind: KindSpeedups, ProcList: []int{1, 65}}, "out of range"},
		{"bad scale", Request{Kind: KindTable1, Scale: "huge"}, "unknown scale"},
		{"bad mode", Request{Kind: KindTable1, Mode: "dryrun"}, "unknown mode"},
		{"cache npo2", Request{Kind: KindTraffic, CacheSize: 3000}, "power of two"},
		{"line huge", Request{Kind: KindLineSize, LineSizes: []int{1 << 20}}, "power of two"},
		{"assoc npo2", Request{Kind: KindWorkingSets, Assocs: []int{3}}, "associativity"},
		{"opts multi-app", Request{Kind: KindTraffic, Opts: map[string]int{"m": 8}}, "single-app"},
	}
	for _, tc := range bad {
		if _, err := tc.req.Canonical(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestRequestKeyStability(t *testing.T) {
	// Equivalent spellings — defaults elided vs. explicit, procList
	// unsorted — address the same content.
	a := Request{Kind: KindSpeedups, ProcList: []int{4, 1, 2}}
	b := Request{Kind: KindSpeedups, ProcList: []int{1, 2, 4}, Procs: 32, Scale: "sweep", Mode: "live"}
	if a.Key() != b.Key() {
		t.Error("equivalent requests hash differently")
	}
	if a.ETag() != b.ETag() {
		t.Error("equivalent requests carry different ETags")
	}
	// Any semantic difference must change the key.
	c := Request{Kind: KindSpeedups, ProcList: []int{1, 2, 8}}
	if a.Key() == c.Key() {
		t.Error("different requests collide")
	}
	d := Request{Kind: KindSpeedups, ProcList: []int{4, 1, 2}, Mode: "record-replay"}
	if a.Key() == d.Key() {
		t.Error("mode change did not change key")
	}
	if tag := a.ETag(); !strings.HasPrefix(tag, `"`) || !strings.HasSuffix(tag, `"`) {
		t.Errorf("ETag %q not a quoted strong validator", tag)
	}
}

func TestRequestKeyPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Key of invalid request did not panic")
		}
	}()
	Request{Kind: "nope"}.Key()
}

func TestParseNamesRoundTrip(t *testing.T) {
	for _, name := range []string{"sweep", "default", "paper"} {
		s, err := ParseScale(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := ScaleName(s); got != name {
			t.Errorf("ScaleName(ParseScale(%q)) = %q", name, got)
		}
	}
	for _, name := range []string{"live", "record-replay"} {
		m, err := ParseExecMode(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := ExecModeName(m); got != name {
			t.Errorf("ExecModeName(ParseExecMode(%q)) = %q", name, got)
		}
	}
}

// TestEngineDoMatchesDirectCalls pins the request dispatcher to the
// underlying engine methods the CLI uses: byte-identical JSON is the
// serve layer's core promise.
func TestEngineDoMatchesDirectCalls(t *testing.T) {
	e, _ := NewEngine(EngineOptions{Workers: 4})
	apps := []string{"fft", "lu"}

	res, err := e.Do(context.Background(), Request{Kind: KindTable1, Apps: apps, Procs: 4, Scale: "default"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Table1(apps, 4, DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Table1, want) {
		t.Error("Do(table1) differs from Engine.Table1")
	}
	if res.Procs != 4 {
		t.Errorf("res.Procs = %d", res.Procs)
	}

	res, err = e.Do(context.Background(), Request{Kind: KindSpeedups, Apps: apps, ProcList: []int{1, 4}, Scale: "default"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSp, err := e.Speedups(apps, []int{1, 4}, DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Speedups, wantSp) {
		t.Error("Do(speedups) differs from Engine.Speedups")
	}
}

func TestEngineDoWorkingSetsFillsTable2(t *testing.T) {
	e, _ := NewEngine(EngineOptions{Workers: 4})
	res, err := e.Do(context.Background(), Request{
		Kind: KindWorkingSets, Apps: []string{"radix"}, Procs: 4,
		CacheSizes: []int{1 << 10, 1 << 12, 1 << 14}, Scale: "default",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MissCurves) == 0 {
		t.Fatal("no miss curves")
	}
	if len(res.Table2) == 0 || len(res.PruneAdvice) == 0 {
		t.Errorf("Table2 (%d rows) / PruneAdvice (%d rows) not derived", len(res.Table2), len(res.PruneAdvice))
	}
}

func TestEngineDoProgressAndScoping(t *testing.T) {
	e, _ := NewEngine(EngineOptions{Workers: 4})
	var mu sync.Mutex
	var events []runner.ProgressEvent
	sink := func(ev runner.ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	if _, err := e.Do(context.Background(), Request{Kind: KindSync, Apps: []string{"barnes"}, Procs: 2, Scale: "default"}, sink); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("no progress events delivered")
	}
	var summaries int
	for _, ev := range events {
		if ev.Status == "summary" {
			summaries++
		}
	}
	if summaries == 0 {
		t.Error("no summary event delivered")
	}
}

func TestEngineDoKeepGoingManifest(t *testing.T) {
	rules, err := fault.Parse("error@1=job:run fft*")
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(EngineOptions{Workers: 4, Fault: fault.New(1, rules...)})
	res, err := e.Do(context.Background(), Request{
		Kind: KindTable1, Apps: []string{"fft", "radix"}, Procs: 2,
		Scale: "default", KeepGoing: true,
	}, nil)
	if !errors.Is(err, ErrFailures) {
		t.Fatalf("err = %v, want ErrFailures", err)
	}
	if res == nil || len(res.Failures) == 0 {
		t.Fatal("degraded result carries no failure manifest")
	}
	if len(res.Table1) == 0 {
		t.Error("keep-going lost the surviving rows")
	}

	// A second, clean request on the same engine must not inherit the
	// first request's failures: scope isolation.
	res2, err := e.Do(context.Background(), Request{
		Kind: KindTable1, Apps: []string{"radix"}, Procs: 2,
		Scale: "default", KeepGoing: true,
	}, nil)
	if err != nil {
		t.Fatalf("clean scoped request: %v", err)
	}
	if len(res2.Failures) > 0 {
		t.Errorf("clean request inherited %d failures from sibling scope", len(res2.Failures))
	}
}

func TestEngineDoContextCancel(t *testing.T) {
	e, _ := NewEngine(EngineOptions{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Do(ctx, Request{Kind: KindTable1, Apps: []string{"fft"}, Procs: 2, Scale: "default"}, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
