package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"splash2/internal/memsys"
	"splash2/internal/runner"
)

// engineTestApps are programs whose full-memory metrics are bit-stable
// run to run. radix is excluded: its concurrent permutation writes make
// the global access interleaving — and hence miss classification —
// scheduling-dependent even on the serial path.
var engineTestApps = []string{"fft", "lu"}

// engineTestOptions is a small but complete characterization: every
// experiment kind (run, record, recordstats, replay) is exercised.
func engineTestOptions() ReportOptions {
	return ReportOptions{
		Apps:       engineTestApps,
		Procs:      4,
		ProcList:   []int{1, 4},
		Scale:      SweepScale,
		CacheSizes: []int{16 << 10, 64 << 10},
		LineSizes:  []int{64},
	}
}

// TestParallelMatchesSerial is the PRAM determinism invariant: a
// characterization scheduled on 8 workers must be deep-equal to the
// single-worker serial run.
func TestParallelMatchesSerial(t *testing.T) {
	o := engineTestOptions()

	o.Workers = 1
	serial, err := CollectResults(o)
	if err != nil {
		t.Fatal(err)
	}

	o.Workers = 8
	parallel, err := CollectResults(o)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel results diverge from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// collectWithEngine runs CollectResults through a fresh engine rooted at
// dir and returns the results plus the engine's counters.
func collectWithEngine(t *testing.T, dir string, o ReportOptions) (*Results, runner.Counts) {
	t.Helper()
	e, err := NewEngine(EngineOptions{Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.CollectResults(o)
	if err != nil {
		t.Fatal(err)
	}
	return res, e.Counts()
}

// TestDiskCacheSecondRunExecutesNothing: a second process (modeled by a
// fresh engine over the same cache directory) must be served entirely
// from disk — zero jobs executed — and produce identical results. The
// lazy trace recordings are never demanded when every replay hits.
func TestDiskCacheSecondRunExecutesNothing(t *testing.T) {
	dir := t.TempDir()
	o := engineTestOptions()

	first, c1 := collectWithEngine(t, dir, o)
	if c1.Executed == 0 {
		t.Fatal("first run executed nothing")
	}

	second, c2 := collectWithEngine(t, dir, o)
	if c2.Executed != 0 {
		t.Fatalf("second run executed %d jobs, want 0 (cache hits %d)", c2.Executed, c2.CacheHits)
	}
	if c2.CacheHits == 0 {
		t.Fatal("second run reported no cache hits")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached results differ from computed results")
	}
}

// TestDiskCacheSurvivesCorruption: garbled and truncated cache entries
// must be treated as misses — recomputed, not trusted — and the run must
// still match the original results.
func TestDiskCacheSurvivesCorruption(t *testing.T) {
	dir := t.TempDir()
	o := engineTestOptions()

	first, _ := collectWithEngine(t, dir, o)

	var n int
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		// Alternate corruption modes across the entries.
		n++
		if n%2 == 0 {
			return os.WriteFile(path, []byte("{not json"), 0o644)
		}
		return os.Truncate(path, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no cache files written")
	}

	again, c := collectWithEngine(t, dir, o)
	if c.Executed == 0 {
		t.Fatal("corrupted cache was not recomputed")
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("results after cache corruption differ")
	}
}

// TestTraceSharedAcrossSweeps: the Figure-3 and Figure-7/8 sweeps must
// share one recorded trace per program within an engine. After a
// WorkingSets sweep, a LineSizeSweep over fresh configurations executes
// only its own fused sweep plus the recording-counters job — the trace
// recording itself is served from the in-memory memo.
func TestTraceSharedAcrossSweeps(t *testing.T) {
	e, err := NewEngine(EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.WorkingSets([]string{"fft"}, 4, []int{16 << 10}, []int{4}, SweepScale); err != nil {
		t.Fatal(err)
	}
	before := e.Counts().Executed

	lineSizes := []int{32, 128} // configs disjoint from the sweep above
	if _, err := e.LineSizeSweep("fft", 4, 64<<10, lineSizes, SweepScale); err != nil {
		t.Fatal(err)
	}
	delta := e.Counts().Executed - before

	want := int64(2) // one fused lssweep + recordstats, no re-record
	if delta != want {
		t.Fatalf("line-size sweep executed %d jobs, want %d (recording not shared?)", delta, want)
	}
}

// TestReplaySweepMatchesSerialReplay: the parallel trace-file sweep must
// equal per-config serial replays of the same trace.
func TestReplaySweepMatchesSerialReplay(t *testing.T) {
	tr, _, err := RecordApp("fft", 4, SweepScale.Overrides("fft"))
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]memsys.Config, 0, 3)
	for _, cs := range []int{16 << 10, 64 << 10, 1 << 20} {
		cfgs = append(cfgs, memsys.Config{Procs: 4, CacheSize: cs, Assoc: 4, LineSize: 64})
	}
	par, err := ReplaySweep(tr, cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := ReplaySweep(tr, cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, ser) {
		t.Fatal("parallel replay sweep diverges from serial")
	}
}
