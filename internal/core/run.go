// Package core is the characterization engine — the paper's methodological
// contribution. It runs the SPLASH-2 programs over controlled machine and
// problem parameters and regenerates every table and figure of the
// evaluation: instruction breakdowns (Table 1), PRAM speedups (Figure 1),
// synchronization profiles (Figure 2), working sets via miss rate versus
// cache size and associativity (Figure 3, Table 2), traffic breakdowns and
// their scaling (Figures 4–6, Table 3), and spatial locality / false
// sharing versus line size (Figures 7–8).
package core

import (
	"fmt"

	"splash2/internal/apps"
	"splash2/internal/mach"
	"splash2/internal/memsys"
)

// Scale selects problem sizes for an experiment: Default uses each
// program's registered defaults; Sweep uses smaller inputs sized for the
// many-point parameter sweeps (the paper's own methodology: scaled-down
// problems are valid once the working-set interplay is understood, §5).
type Scale int

const (
	// DefaultScale runs each program's registered default problem.
	DefaultScale Scale = iota
	// SweepScale runs reduced problems for multi-point sweeps.
	SweepScale
	// PaperScale runs the paper's published default problem sizes
	// (Table 1). Expect hours per full characterization: this exists for
	// spot-checking single programs, e.g.
	// core.Run("fft", cfg, PaperScale.Overrides("fft")).
	PaperScale
)

// sweepOverrides are the reduced problem parameters used by SweepScale.
var sweepOverrides = map[string]map[string]int{
	"barnes":    {"n": 256, "steps": 1},
	"cholesky":  {"nblocks": 16, "b": 4},
	"fft":       {"n": 1024},
	"fmm":       {"n": 256, "steps": 1, "terms": 8},
	"lu":        {"n": 64, "b": 8},
	"ocean":     {"n": 32, "steps": 1, "vcycles": 2},
	"radiosity": {"panels": 1, "iters": 2},
	"radix":     {"n": 8192, "radix": 64, "maxkey": 1 << 18},
	"raytrace":  {"width": 32, "spheres": 16, "grid": 4, "tile": 4},
	"volrend":   {"dim": 16, "width": 24, "frames": 1, "tile": 4},
	"water-nsq": {"n": 64, "steps": 1},
	"water-sp":  {"n": 125, "steps": 1},
}

// paperOverrides are the paper's Table-1 default problem sizes.
var paperOverrides = map[string]map[string]int{
	"barnes":    {"n": 16384, "steps": 4},
	"cholesky":  {"nblocks": 128, "b": 16}, // tk15.O-order working set
	"fft":       {"n": 65536},
	"fmm":       {"n": 16384, "steps": 4},
	"lu":        {"n": 512, "b": 16},
	"ocean":     {"n": 256, "steps": 4},
	"radiosity": {"panels": 4, "iters": 6}, // room-order patch counts
	"radix":     {"n": 1 << 20, "radix": 1024, "maxkey": 1 << 30},
	"raytrace":  {"width": 256, "spheres": 128, "grid": 16},
	"volrend":   {"dim": 256, "width": 128, "frames": 4},
	"water-nsq": {"n": 512, "steps": 4},
	"water-sp":  {"n": 512, "steps": 4},
}

// Overrides returns the option overrides for an app at a scale.
func (s Scale) Overrides(app string) map[string]int {
	switch s {
	case SweepScale:
		return sweepOverrides[app]
	case PaperScale:
		return paperOverrides[app]
	}
	return nil
}

// Suite is the canonical program order used by the paper's tables.
var Suite = []string{
	"barnes", "cholesky", "fft", "fmm", "lu", "ocean",
	"radiosity", "radix", "raytrace", "volrend", "water-nsq", "water-sp",
}

// RunResult is one program execution on one machine configuration.
type RunResult struct {
	App   string
	Cfg   mach.Config
	Stats mach.Stats
}

// Run executes one program on a fresh machine and snapshots measurement.
// Verification is skipped (sweeps run hundreds of configurations); the
// test suite verifies every program separately.
func Run(app string, cfg mach.Config, over map[string]int) (*RunResult, error) {
	m, err := mach.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", app, err)
	}
	r, err := apps.BuildWithDefaults(app, m, over)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", app, err)
	}
	r.Run(m)
	return &RunResult{App: app, Cfg: cfg, Stats: m.Snapshot()}, nil
}

// RunVerified is Run plus the program's own correctness check.
func RunVerified(app string, cfg mach.Config, over map[string]int) (*RunResult, error) {
	m, err := mach.New(cfg)
	if err != nil {
		return nil, err
	}
	r, err := apps.BuildWithDefaults(app, m, over)
	if err != nil {
		return nil, err
	}
	r.Run(m)
	if err := r.Verify(); err != nil {
		return nil, err
	}
	return &RunResult{App: app, Cfg: cfg, Stats: m.Snapshot()}, nil
}

// RecordApp executes one program under the count-only model while
// capturing its global reference trace, returning the trace and the
// run's counters. The trace can then be replayed through arbitrary cache
// configurations (memsys.Replay), which keeps the reference stream
// identical across a parameter sweep — the comparability property §2.2
// adopts PRAM timing for — and avoids re-executing the program at every
// sweep point.
func RecordApp(app string, procs int, over map[string]int) (*memsys.Trace, mach.Stats, error) {
	m, err := mach.New(mach.Config{Procs: procs, MemModel: mach.CountOnly})
	if err != nil {
		return nil, mach.Stats{}, err
	}
	r, err := apps.BuildWithDefaults(app, m, over)
	if err != nil {
		return nil, mach.Stats{}, err
	}
	m.StartRecording()
	r.Run(m)
	tr := m.FinishRecording()
	return tr, m.Snapshot(), nil
}

// merged combines scale overrides with explicit ones (explicit wins).
func merged(scale Scale, app string, over map[string]int) map[string]int {
	out := map[string]int{}
	//splash:allow determinism key-wise merge map->map; iteration order cannot affect the merged result
	for k, v := range scale.Overrides(app) {
		out[k] = v
	}
	//splash:allow determinism key-wise merge map->map; iteration order cannot affect the merged result
	for k, v := range over {
		out[k] = v
	}
	return out
}

// flopBased reports whether an app's traffic is normalized per FLOP.
func flopBased(app string) bool {
	a, err := apps.Get(app)
	return err == nil && a.FlopBased
}
