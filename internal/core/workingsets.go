package core

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"splash2/internal/memsys"
	"splash2/internal/runner"
)

// MissCurve is one program's miss rate versus cache size at one
// associativity (paper Figure 3). Knees in the curve are the program's
// working sets (§5).
type MissCurve struct {
	App        string
	Assoc      int // memsys.FullyAssoc for fully associative
	CacheSizes []int
	MissRate   []float64 // percent

	// Failed is the FAILED(...) placeholder for a lost sweep (keep-going);
	// MissRate is empty then.
	Failed string `json:"failed,omitempty"`
}

// DefaultCacheSizes are the paper's power-of-two sweep points, 1 KB–1 MB.
func DefaultCacheSizes() []int {
	var out []int
	for s := 1 << 10; s <= 1<<20; s <<= 1 {
		out = append(out, s)
	}
	return out
}

// WorkingSets sweeps cache size × associativity for each program with
// 64-byte lines on procs processors (Figure 3). Each program executes
// once; its recorded reference trace is replayed at every sweep point so
// all points see the identical stream (§2.2's comparability argument).
func WorkingSets(appNames []string, procs int, cacheSizes []int, assocs []int, scale Scale) ([]MissCurve, error) {
	return serialEngine().WorkingSets(appNames, procs, cacheSizes, assocs, scale)
}

// WorkingSets schedules one lazy record job per program feeding a single
// fused sweep job, so a program whose grid is served from the result
// cache is never re-executed at all, and an uncached grid costs one
// multi-configuration pass over the trace instead of one replay per
// point.
func (e *Engine) WorkingSets(appNames []string, procs int, cacheSizes []int, assocs []int, scale Scale) ([]MissCurve, error) {
	g := e.newGraph()
	sweeps := make(map[string]runner.Job[[][]float64], len(appNames))
	for _, name := range appNames {
		id := traceIdent{App: name, Procs: procs, Opts: canonOpts(scale.Overrides(name))}
		rec := e.recordJob(g, id)
		sweeps[name] = e.workingSetSweepJob(g, rec, id, cacheSizes, assocs)
	}
	if err := g.Wait(e.ctx); err != nil {
		return nil, err
	}
	var out []MissCurve
	for _, name := range appNames {
		grid, failed, err := degrade(e, sweeps[name])
		if err != nil {
			return nil, err
		}
		for ai, assoc := range assocs {
			if failed != "" {
				out = append(out, MissCurve{App: name, Assoc: assoc, CacheSizes: cacheSizes, Failed: failed})
				continue
			}
			out = append(out, MissCurve{App: name, Assoc: assoc, CacheSizes: cacheSizes, MissRate: grid[ai]})
		}
	}
	return out, nil
}

// workingSetSweepJob schedules one program's whole Figure-3 grid as a
// single job (kind "wsweep"): every assoc × cache-size point is computed
// from the recorded trace in one pass — a stack-distance simulation
// answers all fully-associative sizes at once and a fused multi-
// configuration replay covers the set-associative points.
func (e *Engine) workingSetSweepJob(g *runner.Graph, rec runner.Job[recordOut], id traceIdent, cacheSizes, assocs []int) runner.Job[[][]float64] {
	return runner.Submit(g, runner.Spec{
		Label: fmt.Sprintf("wsweep %s %d sizes × %d assocs", id.App, len(cacheSizes), len(assocs)),
		Key:   runner.KeyOf("wsweep", id, cacheSizes, assocs, 64),
		Deps:  []runner.Handle{rec},
	}, func(ctx context.Context) ([][]float64, error) {
		out, err := rec.Result()
		if err != nil {
			return nil, err
		}
		return workingSetMissRates(out.Trace, id.Procs, cacheSizes, assocs)
	})
}

// workingSetMissRates computes the assoc-major miss-rate grid of a
// Figure-3 sweep: grid[ai][ci] is the percentage miss rate with 64-byte
// lines at assocs[ai], cacheSizes[ci] — numerically identical, point by
// point, to replaying each configuration separately. The stream may be
// in memory or an out-of-core TraceFile; both passes consume it block
// by block.
func workingSetMissRates(tr memsys.TraceSource, procs int, cacheSizes, assocs []int) ([][]float64, error) {
	grid := make([][]float64, len(assocs))
	for i := range grid {
		grid[i] = make([]float64, len(cacheSizes))
	}

	// Set-associative points: one fused replay drives every configuration
	// off a single decode of the trace.
	var cfgs []memsys.Config
	var at [][2]int
	for ai, assoc := range assocs {
		if assoc == memsys.FullyAssoc {
			continue
		}
		for ci, cs := range cacheSizes {
			cfgs = append(cfgs, memsys.Config{Procs: procs, CacheSize: cs, Assoc: assoc, LineSize: 64})
			at = append(at, [2]int{ai, ci})
		}
	}
	stats, err := memsys.ReplayMulti(tr, cfgs)
	if err != nil {
		return nil, err
	}
	for i, st := range stats {
		grid[at[i][0]][at[i][1]] = 100 * st.MissRate()
	}

	// Fully-associative points: one stack-distance pass answers all sizes.
	var sp *memsys.StackProfile
	for ai, assoc := range assocs {
		if assoc != memsys.FullyAssoc {
			continue
		}
		if sp == nil {
			maxSize := 0
			for _, cs := range cacheSizes {
				if cs > maxSize {
					maxSize = cs
				}
			}
			if sp, err = memsys.StackDistances(tr, 64, maxSize); err != nil {
				return nil, err
			}
		}
		for ci, cs := range cacheSizes {
			mr, err := sp.MissRate(cs)
			if err != nil {
				return nil, err
			}
			grid[ai][ci] = 100 * mr
		}
	}
	return grid, nil
}

// assocLabel names an associativity.
func assocLabel(a int) string {
	if a == memsys.FullyAssoc {
		return "full"
	}
	return fmt.Sprintf("%d-way", a)
}

// RenderMissCurves prints Figure 3 as one row per (app, assoc).
func RenderMissCurves(w io.Writer, curves []MissCurve) {
	if len(curves) == 0 {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Code\tAssoc")
	for _, cs := range curves[0].CacheSizes {
		fmt.Fprintf(tw, "\t%dK", cs/1024)
	}
	fmt.Fprintln(tw)
	for _, c := range curves {
		fmt.Fprintf(tw, "%s\t%s", c.App, assocLabel(c.Assoc))
		if c.Failed != "" {
			fmt.Fprintf(tw, "\t%s\n", c.Failed)
			continue
		}
		for _, mr := range c.MissRate {
			fmt.Fprintf(tw, "\t%.2f%%", mr)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Knee locates the most important working set in a miss curve: the cache
// size with the largest relative miss-rate drop from the previous size.
func (c MissCurve) Knee() (cacheSize int, drop float64) {
	for i := 1; i < len(c.MissRate); i++ {
		d := c.MissRate[i-1] - c.MissRate[i]
		if d > drop {
			drop = d
			cacheSize = c.CacheSizes[i]
		}
	}
	return cacheSize, drop
}

// Table2Row reproduces the paper's Table 2 for one program: the important
// working sets, their analytic growth rates (from the paper's analysis,
// §5), and whether each fits in cache — annotated with the measured knee
// from this run's Figure-3 sweep.
type Table2Row struct {
	App          string
	WS1          string // constitution of the first working set
	WS1Growth    string
	WS1Fits      string
	WS2          string
	WS2Growth    string
	WS2Fits      string
	MeasuredKnee int // bytes, from the measured 4-way curve
}

// table2Static is the paper's qualitative content of Table 2.
var table2Static = map[string][6]string{
	"barnes":    {"tree data for body", "log DS", "yes", "partition of DS", "DS/P", "maybe"},
	"cholesky":  {"one block", "fixed", "yes", "partition of DS", "DS/P", "maybe"},
	"fft":       {"one row of matrix", "√DS", "yes", "partition of DS", "DS/P", "maybe"},
	"fmm":       {"expansion terms", "fixed", "yes", "partition of DS", "DS/P", "maybe"},
	"lu":        {"one block", "fixed", "yes", "partition of DS", "DS/P", "maybe"},
	"ocean":     {"a few subrows", "√(DS/P)", "yes", "partition of DS", "DS/P", "maybe"},
	"radiosity": {"BSP tree", "log(polygons)", "yes", "unstructured", "unstructured", "maybe"},
	"radix":     {"histogram", "radix r", "yes", "partition of DS", "DS/P", "maybe"},
	"raytrace":  {"unstructured", "unstructured", "yes", "unstructured", "unstructured", "maybe"},
	"volrend":   {"octree, part of ray", "K·log DS", "yes", "partition of DS", "≈DS/P", "maybe"},
	"water-nsq": {"private data", "fixed", "yes", "partition of DS", "DS", "maybe"},
	"water-sp":  {"private data", "fixed", "yes", "partition of DS", "DS/P", "maybe"},
}

// Table2 combines the static analysis with the measured knees of the
// provided 4-way curves (one per program). Curves lost to failures
// (keep-going mode) carry no knee and are omitted.
func Table2(curves []MissCurve) []Table2Row {
	var out []Table2Row
	for _, c := range curves {
		if c.Failed != "" {
			continue
		}
		s, ok := table2Static[c.App]
		if !ok {
			continue
		}
		knee, _ := c.Knee()
		out = append(out, Table2Row{
			App: c.App,
			WS1: s[0], WS1Growth: s[1], WS1Fits: s[2],
			WS2: s[3], WS2Growth: s[4], WS2Fits: s[5],
			MeasuredKnee: knee,
		})
	}
	return out
}

// RenderTable2 prints Table 2.
func RenderTable2(w io.Writer, rows []Table2Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Code\tWorking Set 1\tGrowth\tFits?\tWorking Set 2\tGrowth\tFits?\tMeasured knee")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%dK\n",
			r.App, r.WS1, r.WS1Growth, r.WS1Fits, r.WS2, r.WS2Growth, r.WS2Fits, r.MeasuredKnee/1024)
	}
	tw.Flush()
}
