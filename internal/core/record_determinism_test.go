package core

import (
	"bytes"
	"runtime"
	"testing"
)

// recordBytes records one app and serializes the trace.
func recordBytes(t *testing.T, app string, procs int, over map[string]int) []byte {
	t.Helper()
	tr, _, err := RecordApp(app, procs, over)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Recording is byte-deterministic: the per-processor sub-streams are
// merged by synchronization epoch, not by goroutine scheduling order, so
// the serialized trace of a barrier/flag-structured program must be
// identical across repeated runs and across GOMAXPROCS settings. This is
// the regression test for the batched capture path — under per-event
// global locking the recorded interleaving was scheduler-dependent and
// this test fails.
func TestRecordingDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const app, procs = "fft", 8
	over := SweepScale.Overrides(app)

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	serial := recordBytes(t, app, procs, over)
	runtime.GOMAXPROCS(1)
	serialAgain := recordBytes(t, app, procs, over)
	gmp := runtime.NumCPU()
	if gmp < 2 {
		gmp = 2
	}
	runtime.GOMAXPROCS(gmp)
	parallel := recordBytes(t, app, procs, over)
	parallelAgain := recordBytes(t, app, procs, over)

	if !bytes.Equal(serial, serialAgain) {
		t.Fatal("two recordings at GOMAXPROCS=1 differ")
	}
	if !bytes.Equal(parallel, parallelAgain) {
		t.Fatalf("two recordings at GOMAXPROCS=%d differ", gmp)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("recording at GOMAXPROCS=1 (%d bytes) differs from GOMAXPROCS=%d (%d bytes)",
			len(serial), gmp, len(parallel))
	}
	if len(serial) == 0 {
		t.Fatal("empty serialized trace")
	}
}
