package core

import (
	"math"
	"os"
	"strconv"
	"testing"

	"splash2/internal/memsys"

	_ "splash2/internal/apps/all"
)

// validationSeeds returns the hash seeds the envelope harness drills:
// 1–3 by default, or the single seed named by SAMPLED_SEED (the CI
// sampling-validation matrix runs one job per seed).
func validationSeeds(t *testing.T) []uint64 {
	v := os.Getenv("SAMPLED_SEED")
	if v == "" {
		return []uint64{1, 2, 3}
	}
	s, err := strconv.ParseUint(v, 10, 64)
	if err != nil || s == 0 {
		t.Fatalf("bad SAMPLED_SEED %q", v)
	}
	return []uint64{s}
}

// TestSampledErrorEnvelopeSuite is the validation harness for the
// sampled reuse-distance estimator: over the full recorded suite, at the
// production sampling rate (1%), the estimated fully-associative miss
// ratio must stay within 0.02 absolute of the exact Mattson pass at
// every default cache size, for several seeds. Each program is recorded
// once and both passes consume the identical trace, so the property is
// about estimation error alone, not run-to-run reference variation.
//
// This is the acceptance bound BENCH_sampling.json reports against; the
// synthetic-trace unit tests in internal/memsys cover the bit-identity
// and determinism properties, this test covers accuracy on the real
// workloads.
func TestSampledErrorEnvelopeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("records and profiles the full suite")
	}
	const (
		rate     = 0.01
		procs    = 8
		maxAbsMR = 0.02
	)
	sizes := DefaultCacheSizes()
	seeds := validationSeeds(t)
	for _, app := range Suite {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			tr, _, err := RecordApp(app, procs, DefaultScale.Overrides(app))
			if err != nil {
				t.Fatal(err)
			}
			exact, err := memsys.StackDistances(tr, 64, sizes[len(sizes)-1])
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range seeds {
				sp, err := memsys.SampledStackDistances(tr, 64, sizes[len(sizes)-1],
					memsys.SampledOptions{Rate: rate, Seed: seed, ExactLines: memsys.DefaultExactLines})
				if err != nil {
					t.Fatal(err)
				}
				for _, cs := range sizes {
					want, err := exact.MissRate(cs)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sp.EstMissRate(cs)
					if err != nil {
						t.Fatal(err)
					}
					if d := math.Abs(got - want); d > maxAbsMR {
						t.Errorf("seed %d size %dK: |%.4f - %.4f| = %.4f > %.2f",
							seed, cs/1024, got, want, d, maxAbsMR)
					}
					lo, hi, err := sp.Band(cs)
					if err != nil {
						t.Fatal(err)
					}
					if lo > got || got > hi {
						t.Errorf("seed %d size %dK: band [%.4f, %.4f] does not contain estimate %.4f",
							seed, cs/1024, lo, hi, got)
					}
				}
			}
		})
	}
}

// TestWorkingSetsSampledEngine drills the wsweep-sampled job through the
// engine: curves come back banded and percent-scaled, a rate-1 run
// reproduces the exact fully-associative sweep bit for bit, and invalid
// rates are rejected before any job is scheduled.
func TestWorkingSetsSampledEngine(t *testing.T) {
	apps := []string{"fft", "radix"}
	sizes := DefaultCacheSizes()

	curves, err := WorkingSetsSampled(apps, 4, sizes, 1, 1, DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != len(apps) {
		t.Fatalf("curves = %d, want %d", len(curves), len(apps))
	}
	exact, err := WorkingSets(apps, 4, sizes, []int{memsys.FullyAssoc}, DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range curves {
		if c.App != apps[i] || c.Rate != 1 || c.EffRate != 1 || c.ExactLines != memsys.DefaultExactLines {
			t.Errorf("curve %d identity: %+v", i, c)
		}
		for j := range sizes {
			if c.MissRate[j] != exact[i].MissRate[j] {
				t.Errorf("%s size %dK: rate-1 estimate %v != exact %v",
					c.App, sizes[j]/1024, c.MissRate[j], exact[i].MissRate[j])
			}
			if c.BandLo[j] != c.MissRate[j] || c.BandHi[j] != c.MissRate[j] {
				t.Errorf("%s size %dK: rate-1 band [%v, %v] not degenerate",
					c.App, sizes[j]/1024, c.BandLo[j], c.BandHi[j])
			}
		}
	}

	if _, err := WorkingSetsSampled(apps, 4, sizes, 0, 1, DefaultScale); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := WorkingSetsSampled(apps, 4, sizes, 1.5, 1, DefaultScale); err == nil {
		t.Error("rate 1.5 accepted")
	}
}
