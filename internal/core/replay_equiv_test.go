package core

import (
	"reflect"
	"testing"

	"splash2/internal/memsys"
)

// equivTestTrace records one program's reference stream at sweep scale
// for the fused-replay equivalence tests. Each equivalence check must
// compare both paths on the SAME trace: recording is scheduling-
// dependent, so separate recordings are different interleavings.
func equivTestTrace(t *testing.T, app string) *memsys.Trace {
	t.Helper()
	tr, _, err := RecordApp(app, 4, SweepScale.Overrides(app))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestReplayMultiMatchesReplayOnAppTraces: on real recorded application
// traces (not just synthetic streams), the fused multi-configuration
// replay must be deep-equal, configuration by configuration, to
// independent serial replays.
func TestReplayMultiMatchesReplayOnAppTraces(t *testing.T) {
	cfgs := []memsys.Config{
		{Procs: 4, CacheSize: 16 << 10, Assoc: 4, LineSize: 64},
		{Procs: 4, CacheSize: 64 << 10, Assoc: 1, LineSize: 64},
		{Procs: 4, CacheSize: 64 << 10, Assoc: memsys.FullyAssoc, LineSize: 64},
		{Procs: 4, CacheSize: 64 << 10, Assoc: 4, LineSize: 16},
		{Procs: 4, CacheSize: 64 << 10, Assoc: 4, LineSize: 256},
	}
	for _, app := range engineTestApps {
		tr := equivTestTrace(t, app)
		multi, err := memsys.ReplayMulti(tr, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for i, cfg := range cfgs {
			single, err := memsys.Replay(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(multi[i], single) {
				t.Errorf("%s cfg %d: fused replay diverges from serial replay", app, i)
			}
		}
	}
}

// TestStackDistancesMatchReplayOnAppTraces: the one-pass stack-distance
// profile must reproduce fully-associative Replay miss counts and rates
// exactly on recorded application traces.
func TestStackDistancesMatchReplayOnAppTraces(t *testing.T) {
	sizes := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 1 << 20}
	for _, app := range engineTestApps {
		tr := equivTestTrace(t, app)
		sp, err := memsys.StackDistances(tr, 64, sizes[len(sizes)-1])
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range sizes {
			st, err := memsys.Replay(tr, memsys.Config{Procs: 4, CacheSize: cs, Assoc: memsys.FullyAssoc, LineSize: 64})
			if err != nil {
				t.Fatal(err)
			}
			misses, err := sp.Misses(cs)
			if err != nil {
				t.Fatal(err)
			}
			if want := st.Aggregate().TotalMisses(); misses != want {
				t.Errorf("%s %dK: stack-distance misses %d, replay %d", app, cs/1024, misses, want)
			}
			rate, err := sp.MissRate(cs)
			if err != nil {
				t.Fatal(err)
			}
			if rate != st.MissRate() {
				t.Errorf("%s %dK: stack-distance miss rate %v not bit-identical to replay %v", app, cs/1024, rate, st.MissRate())
			}
		}
	}
}

// TestWorkingSetsMatchPerConfigReplays: the fused Figure-3 grid (stack
// distances for fully-associative points, multi-replay for the
// set-associative ones) must be bit-identical to the per-configuration
// serial path it replaced. Both sides run on ONE recorded trace: program
// scheduling is not deterministic, so two recordings of the same program
// are distinct interleavings with (legitimately) different miss counts.
func TestWorkingSetsMatchPerConfigReplays(t *testing.T) {
	cacheSizes := []int{2 << 10, 8 << 10, 32 << 10, 128 << 10}
	assocs := []int{1, 4, memsys.FullyAssoc}
	const app = "fft"

	tr := equivTestTrace(t, app)
	grid, err := workingSetMissRates(tr, 4, cacheSizes, assocs)
	if err != nil {
		t.Fatal(err)
	}
	for ai, assoc := range assocs {
		if len(grid[ai]) != len(cacheSizes) {
			t.Fatalf("assoc=%d row has unexpected shape: %+v", assoc, grid[ai])
		}
		for si, cs := range cacheSizes {
			st, err := memsys.Replay(tr, memsys.Config{Procs: 4, CacheSize: cs, Assoc: assoc, LineSize: 64})
			if err != nil {
				t.Fatal(err)
			}
			if want := 100 * st.MissRate(); grid[ai][si] != want {
				t.Errorf("assoc=%d size=%dK: fused grid %v, serial replay %v", assoc, cs/1024, grid[ai][si], want)
			}
		}
	}
}
