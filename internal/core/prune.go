package core

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// PruneAdvice automates the paper's §5 methodology for one program: given
// a measured miss-rate curve, identify the working-set knees, the
// representative operating points (one per flat region — "if the curve in
// a representative region is relatively flat ... a single operating point
// can be chosen from that region and the rest can be pruned"), and the
// redundant cache sizes that need not be simulated.
type PruneAdvice struct {
	App string
	// Knees are cache sizes at which a working set starts to fit (miss
	// rate drops sharply from the previous size).
	Knees []int
	// Representative holds one cache size per flat region of the curve.
	Representative []int
	// Redundant holds the pruned sizes (flat-region duplicates).
	Redundant []int
}

// kneeFraction: a drop counts as a knee when it exceeds this fraction of
// the curve's total range.
const kneeFraction = 0.15

// flatFraction: consecutive points within this fraction of the range are
// one flat region.
const flatFraction = 0.03

// Prune analyzes one miss curve.
func Prune(c MissCurve) PruneAdvice {
	adv := PruneAdvice{App: c.App}
	if len(c.MissRate) == 0 {
		return adv
	}
	lo, hi := c.MissRate[0], c.MissRate[0]
	for _, v := range c.MissRate {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	rng := hi - lo
	if rng == 0 {
		// Perfectly flat: one representative point suffices.
		adv.Representative = []int{c.CacheSizes[0]}
		adv.Redundant = append(adv.Redundant, c.CacheSizes[1:]...)
		return adv
	}

	// Knees: big drops between consecutive sizes.
	for i := 1; i < len(c.MissRate); i++ {
		if c.MissRate[i-1]-c.MissRate[i] > kneeFraction*rng {
			adv.Knees = append(adv.Knees, c.CacheSizes[i])
		}
	}

	// Flat regions: maximal runs of consecutive points whose values stay
	// within flatFraction of the range; keep the first point of each run.
	i := 0
	for i < len(c.MissRate) {
		j := i
		for j+1 < len(c.MissRate) && absf(c.MissRate[j+1]-c.MissRate[i]) <= flatFraction*rng {
			j++
		}
		adv.Representative = append(adv.Representative, c.CacheSizes[i])
		for k := i + 1; k <= j; k++ {
			adv.Redundant = append(adv.Redundant, c.CacheSizes[k])
		}
		i = j + 1
	}
	return adv
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RenderPrune prints the advice table.
func RenderPrune(w io.Writer, advice []PruneAdvice) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Code\tKnees (working sets fit)\tSimulate\tPrune")
	for _, a := range advice {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n",
			a.App, sizesKB(a.Knees), sizesKB(a.Representative), sizesKB(a.Redundant))
	}
	tw.Flush()
}

func sizesKB(sizes []int) string {
	if len(sizes) == 0 {
		return "—"
	}
	out := ""
	for i, s := range sizes {
		if i > 0 {
			out += ","
		}
		if s >= 1024 {
			out += fmt.Sprintf("%dK", s/1024)
		} else {
			out += fmt.Sprintf("%dB", s)
		}
	}
	return out
}

// BandwidthMBs converts a traffic point into the paper's §6 bandwidth
// estimate: remote bytes per operation × issue rate (FLOPS or IPS),
// in MB/s per processor. The paper uses 200 MFLOPS / 200 MIPS.
func BandwidthMBs(t TrafficPoint, rateHz float64) float64 {
	return t.Remote() * rateHz / 1e6
}

// RenderBandwidth prints §6-style per-processor bandwidth needs.
func RenderBandwidth(w io.Writer, groups [][]TrafficPoint, rateHz float64) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Code\tP\tremote B/op\tMB/s per proc @%.0fM ops/s\n", rateHz/1e6)
	for _, pts := range groups {
		for _, t := range pts {
			if t.Failed != "" {
				fmt.Fprintf(tw, "%s\t%d\t%s\n", t.App, t.Procs, t.Failed)
				continue
			}
			fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.1f\n", t.App, t.Procs, t.Remote(), BandwidthMBs(t, rateHz))
		}
	}
	tw.Flush()
}
