package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestPruneFindsKneeAndFlatRegion(t *testing.T) {
	c := MissCurve{
		App:        "synthetic",
		CacheSizes: []int{1024, 2048, 4096, 8192, 16384, 32768},
		MissRate:   []float64{20, 19.8, 5, 4.9, 4.95, 4.9},
	}
	adv := Prune(c)
	if len(adv.Knees) != 1 || adv.Knees[0] != 4096 {
		t.Fatalf("knees = %v, want [4096]", adv.Knees)
	}
	// Two flat regions: {1K,2K} and {4K..32K}: representatives 1K and 4K.
	if len(adv.Representative) != 2 || adv.Representative[0] != 1024 || adv.Representative[1] != 4096 {
		t.Fatalf("representative = %v", adv.Representative)
	}
	if len(adv.Redundant) != 4 {
		t.Fatalf("redundant = %v", adv.Redundant)
	}
}

func TestPruneFlatCurve(t *testing.T) {
	c := MissCurve{
		App:        "flat",
		CacheSizes: []int{1024, 2048, 4096},
		MissRate:   []float64{3, 3, 3},
	}
	adv := Prune(c)
	if len(adv.Representative) != 1 || len(adv.Redundant) != 2 || len(adv.Knees) != 0 {
		t.Fatalf("flat curve advice: %+v", adv)
	}
}

func TestPruneEmptyCurve(t *testing.T) {
	adv := Prune(MissCurve{App: "empty"})
	if len(adv.Representative) != 0 {
		t.Fatalf("empty curve advice: %+v", adv)
	}
}

func TestPruneOnRealCurve(t *testing.T) {
	curves, err := WorkingSets([]string{"lu"}, 4, []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10}, []int{4}, SweepScale)
	if err != nil {
		t.Fatal(err)
	}
	adv := Prune(curves[0])
	// LU's curve has an early knee (one block) and a long flat tail: at
	// least one size must be prunable.
	if len(adv.Redundant) == 0 {
		t.Fatalf("no redundant points found for LU: %+v", adv)
	}
	if len(adv.Representative)+len(adv.Redundant) != 5 {
		t.Fatalf("representative+redundant != all points: %+v", adv)
	}
	var buf bytes.Buffer
	RenderPrune(&buf, []PruneAdvice{adv})
	if !strings.Contains(buf.String(), "lu") || !strings.Contains(buf.String(), "K") {
		t.Fatalf("render: %s", buf.String())
	}
}

func TestBandwidthEstimate(t *testing.T) {
	pt := TrafficPoint{App: "fft", Procs: 8, RemoteShared: 0.5, RemoteOverhead: 0.5, PerFlop: true}
	// 1 B/FLOP at 200 MFLOPS = 200 MB/s.
	if got := BandwidthMBs(pt, 200e6); got != 200 {
		t.Fatalf("bandwidth = %v, want 200", got)
	}
	var buf bytes.Buffer
	RenderBandwidth(&buf, [][]TrafficPoint{{pt}}, 200e6)
	if !strings.Contains(buf.String(), "200.0") {
		t.Fatalf("render: %s", buf.String())
	}
}
