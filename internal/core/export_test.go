package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func smallResults(t *testing.T) *Results {
	t.Helper()
	res, err := CollectResults(ReportOptions{
		Apps:       []string{"lu", "radix"},
		Procs:      4,
		ProcList:   []int{1, 4},
		Scale:      SweepScale,
		CacheSizes: []int{16 << 10, 1 << 20},
		LineSizes:  []int{64},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCollectResultsComplete(t *testing.T) {
	res := smallResults(t)
	if len(res.Table1) != 2 || len(res.Speedups) != 2 || len(res.Sync) != 2 {
		t.Fatalf("incomplete results: %+v", res)
	}
	if len(res.MissCurves) != 2 || len(res.Table2) != 2 || len(res.PruneAdvice) != 2 {
		t.Fatalf("incomplete working-set results")
	}
	if len(res.Traffic) != 2 || len(res.Table3) != 2 || len(res.LineSize) != 2 {
		t.Fatalf("incomplete traffic results")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	res := smallResults(t)
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Results
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Procs != res.Procs || len(back.Table1) != len(res.Table1) {
		t.Fatal("JSON round trip lost data")
	}
	if back.Table1[0].Instr != res.Table1[0].Instr {
		t.Fatal("JSON round trip changed values")
	}
}

func TestWriteCSVSections(t *testing.T) {
	res := smallResults(t)
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, section := range []string{"#section table1", "#section speedups", "#section sync", "#section missCurves", "#section traffic", "#section lineSize"} {
		if !strings.Contains(out, section) {
			t.Fatalf("CSV missing %q", section)
		}
	}
	// Row counts: table1 has one row per app.
	lines := strings.Split(out, "\n")
	inTable1 := false
	rows := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "#section") {
			inTable1 = strings.Contains(l, "table1")
			continue
		}
		if inTable1 && l != "" && !strings.HasPrefix(l, "app,") {
			rows++
		}
	}
	if rows != 2 {
		t.Fatalf("table1 rows = %d, want 2", rows)
	}
}
