package core

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"splash2/internal/mach"
	"splash2/internal/memsys"
	"splash2/internal/runner"
)

// LineSizePoint is one program's behaviour at one cache line size (paper
// Figures 7–8, §7: spatial locality and false sharing): the miss rate
// decomposed by cause, and the traffic it generates.
type LineSizePoint struct {
	App      string
	LineSize int

	// Miss rates in percent of references, by kind.
	ColdPct     float64
	CapacityPct float64
	TruePct     float64
	FalsePct    float64
	UpgradePct  float64

	// Normalized traffic (bytes per FLOP or per instruction).
	PerFlop        bool
	RemoteData     float64
	RemoteOverhead float64
	LocalData      float64

	// Failed is the FAILED(...) placeholder for a lost sweep (keep-going);
	// a lost program contributes a single failed point.
	Failed string `json:"failed,omitempty"`
}

// TotalMissPct returns the total miss rate.
func (l LineSizePoint) TotalMissPct() float64 {
	return l.ColdPct + l.CapacityPct + l.TruePct + l.FalsePct
}

// DefaultLineSizes are the paper's §7 sweep points.
func DefaultLineSizes() []int { return []int{8, 16, 32, 64, 128, 256} }

// LineSizeSweep measures miss decomposition and traffic versus line size
// at a fixed cache size (1 MB default in the paper). The program executes
// once and its trace is replayed per line size, keeping the reference
// stream identical across the sweep.
func LineSizeSweep(app string, procs int, cacheSize int, lineSizes []int, scale Scale) ([]LineSizePoint, error) {
	return serialEngine().LineSizeSweep(app, procs, cacheSize, lineSizes, scale)
}

// lineSizeJobs is the scheduled form of one program's line-size sweep: a
// lazy record job feeding one fused all-line-sizes replay, plus the
// small disk-cacheable recording counters needed for normalization (so a
// fully-cached sweep never re-records the trace).
type lineSizeJobs struct {
	stats runner.Job[mach.Stats]
	sweep runner.Job[[]memsys.Stats]
}

// LineSizeSweep schedules one program's Figure-7/8 sweep.
func (e *Engine) LineSizeSweep(app string, procs int, cacheSize int, lineSizes []int, scale Scale) ([]LineSizePoint, error) {
	g := e.newGraph()
	jobs := e.lineSizeJobs(g, app, procs, cacheSize, lineSizes, scale)
	if err := g.Wait(e.ctx); err != nil {
		return nil, err
	}
	return e.lineSizePoints(app, lineSizes, jobs)
}

func (e *Engine) lineSizeJobs(g *runner.Graph, app string, procs, cacheSize int, lineSizes []int, scale Scale) lineSizeJobs {
	id := traceIdent{App: app, Procs: procs, Opts: canonOpts(scale.Overrides(app))}
	rec := e.recordJob(g, id)
	// One job replays the whole sweep fused (kind "lssweep"): the trace is
	// decoded once, every line size's system fed per reference.
	sweep := runner.Submit(g, runner.Spec{
		Label: fmt.Sprintf("lssweep %s %dK 4-way ×%d line sizes", app, cacheSize/1024, len(lineSizes)),
		Key:   runner.KeyOf("lssweep", id, cacheSize, lineSizes),
		Deps:  []runner.Handle{rec},
	}, func(ctx context.Context) ([]memsys.Stats, error) {
		out, err := rec.Result()
		if err != nil {
			return nil, err
		}
		cfgs := make([]memsys.Config, len(lineSizes))
		for i, ls := range lineSizes {
			cfgs[i] = memsys.Config{Procs: procs, CacheSize: cacheSize, Assoc: 4, LineSize: ls}
		}
		return memsys.ReplayMulti(out.Trace, cfgs)
	})
	return lineSizeJobs{stats: e.recordStatsJob(g, rec, id), sweep: sweep}
}

func (e *Engine) lineSizePoints(app string, lineSizes []int, jobs lineSizeJobs) ([]LineSizePoint, error) {
	var out []LineSizePoint
	perFlop := flopBased(app)
	runStats, failed, err := degrade(e, jobs.stats)
	if err != nil {
		return nil, err
	}
	sweep, sweepFailed, err := degrade(e, jobs.sweep)
	if err != nil {
		return nil, err
	}
	if failed = firstNonEmpty(failed, sweepFailed); failed != "" {
		return []LineSizePoint{{App: app, PerFlop: perFlop, Failed: failed}}, nil
	}
	counters := mach.Aggregate(runStats.Procs)
	denom := float64(counters.Flops)
	if !perFlop {
		denom = float64(counters.Instr)
	}
	if denom == 0 {
		denom = 1
	}
	for i, ls := range lineSizes {
		st := sweep[i]
		agg := st.Aggregate()
		refs := float64(agg.Refs())
		if refs == 0 {
			refs = 1
		}
		tr := st.Traffic
		out = append(out, LineSizePoint{
			App: app, LineSize: ls, PerFlop: perFlop,
			ColdPct:        100 * float64(agg.Misses[memsys.MissCold]) / refs,
			CapacityPct:    100 * float64(agg.Misses[memsys.MissCapacity]) / refs,
			TruePct:        100 * float64(agg.Misses[memsys.MissTrue]) / refs,
			FalsePct:       100 * float64(agg.Misses[memsys.MissFalse]) / refs,
			UpgradePct:     100 * float64(agg.Upgrades) / refs,
			RemoteData:     float64(tr.RemoteShared+tr.RemoteCold+tr.RemoteCapacity+tr.RemoteWriteback) / denom,
			RemoteOverhead: float64(tr.RemoteOverhead) / denom,
			LocalData:      float64(tr.LocalData) / denom,
		})
	}
	return out, nil
}

// LineSizeSuite runs the sweep for several programs.
func LineSizeSuite(appNames []string, procs, cacheSize int, lineSizes []int, scale Scale) ([][]LineSizePoint, error) {
	return serialEngine().LineSizeSuite(appNames, procs, cacheSize, lineSizes, scale)
}

// LineSizeSuite schedules every program's sweep in one graph.
func (e *Engine) LineSizeSuite(appNames []string, procs, cacheSize int, lineSizes []int, scale Scale) ([][]LineSizePoint, error) {
	g := e.newGraph()
	jobs := make([]lineSizeJobs, len(appNames))
	for i, name := range appNames {
		jobs[i] = e.lineSizeJobs(g, name, procs, cacheSize, lineSizes, scale)
	}
	if err := g.Wait(e.ctx); err != nil {
		return nil, err
	}
	var out [][]LineSizePoint
	for i, name := range appNames {
		pts, err := e.lineSizePoints(name, lineSizes, jobs[i])
		if err != nil {
			return nil, err
		}
		out = append(out, pts)
	}
	return out, nil
}

// RenderLineSizeMisses prints Figure 7 (miss decomposition vs line size).
func RenderLineSizeMisses(w io.Writer, groups [][]LineSizePoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Code\tLine\tCold%\tCap%\tTrue%\tFalse%\tUpgrades%\tTotal miss%")
	for _, pts := range groups {
		for _, l := range pts {
			if l.Failed != "" {
				fmt.Fprintf(tw, "%s\t%s\n", l.App, l.Failed)
				continue
			}
			fmt.Fprintf(tw, "%s\t%dB\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
				l.App, l.LineSize, l.ColdPct, l.CapacityPct, l.TruePct, l.FalsePct, l.UpgradePct, l.TotalMissPct())
		}
	}
	tw.Flush()
}

// RenderLineSizeTraffic prints Figure 8 (traffic vs line size).
func RenderLineSizeTraffic(w io.Writer, groups [][]LineSizePoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Code\tLine\tUnit\tRemote data\tRemote ovhd\tLocal data\tTotal")
	for _, pts := range groups {
		for _, l := range pts {
			if l.Failed != "" {
				fmt.Fprintf(tw, "%s\t%s\n", l.App, l.Failed)
				continue
			}
			unit := "B/instr"
			if l.PerFlop {
				unit = "B/FLOP"
			}
			fmt.Fprintf(tw, "%s\t%dB\t%s\t%.4f\t%.4f\t%.4f\t%.4f\n",
				l.App, l.LineSize, unit, l.RemoteData, l.RemoteOverhead, l.LocalData,
				l.RemoteData+l.RemoteOverhead+l.LocalData)
		}
	}
	tw.Flush()
}
