package core

import (
	"fmt"
	"io"
	"text/tabwriter"

	"splash2/internal/mach"
	"splash2/internal/memsys"
)

// LineSizePoint is one program's behaviour at one cache line size (paper
// Figures 7–8, §7: spatial locality and false sharing): the miss rate
// decomposed by cause, and the traffic it generates.
type LineSizePoint struct {
	App      string
	LineSize int

	// Miss rates in percent of references, by kind.
	ColdPct     float64
	CapacityPct float64
	TruePct     float64
	FalsePct    float64
	UpgradePct  float64

	// Normalized traffic (bytes per FLOP or per instruction).
	PerFlop        bool
	RemoteData     float64
	RemoteOverhead float64
	LocalData      float64
}

// TotalMissPct returns the total miss rate.
func (l LineSizePoint) TotalMissPct() float64 {
	return l.ColdPct + l.CapacityPct + l.TruePct + l.FalsePct
}

// DefaultLineSizes are the paper's §7 sweep points.
func DefaultLineSizes() []int { return []int{8, 16, 32, 64, 128, 256} }

// LineSizeSweep measures miss decomposition and traffic versus line size
// at a fixed cache size (1 MB default in the paper). The program executes
// once and its trace is replayed per line size, keeping the reference
// stream identical across the sweep.
func LineSizeSweep(app string, procs int, cacheSize int, lineSizes []int, scale Scale) ([]LineSizePoint, error) {
	var out []LineSizePoint
	perFlop := flopBased(app)
	trace, runStats, err := RecordApp(app, procs, scale.Overrides(app))
	if err != nil {
		return nil, err
	}
	counters := mach.Aggregate(runStats.Procs)
	denom := float64(counters.Flops)
	if !perFlop {
		denom = float64(counters.Instr)
	}
	if denom == 0 {
		denom = 1
	}
	for _, ls := range lineSizes {
		st, err := memsys.Replay(trace, memsys.Config{Procs: procs, CacheSize: cacheSize, Assoc: 4, LineSize: ls})
		if err != nil {
			return nil, err
		}
		agg := st.Aggregate()
		refs := float64(agg.Refs())
		if refs == 0 {
			refs = 1
		}
		tr := st.Traffic
		out = append(out, LineSizePoint{
			App: app, LineSize: ls, PerFlop: perFlop,
			ColdPct:        100 * float64(agg.Misses[memsys.MissCold]) / refs,
			CapacityPct:    100 * float64(agg.Misses[memsys.MissCapacity]) / refs,
			TruePct:        100 * float64(agg.Misses[memsys.MissTrue]) / refs,
			FalsePct:       100 * float64(agg.Misses[memsys.MissFalse]) / refs,
			UpgradePct:     100 * float64(agg.Upgrades) / refs,
			RemoteData:     float64(tr.RemoteShared+tr.RemoteCold+tr.RemoteCapacity+tr.RemoteWriteback) / denom,
			RemoteOverhead: float64(tr.RemoteOverhead) / denom,
			LocalData:      float64(tr.LocalData) / denom,
		})
	}
	return out, nil
}

// LineSizeSuite runs the sweep for several programs.
func LineSizeSuite(appNames []string, procs, cacheSize int, lineSizes []int, scale Scale) ([][]LineSizePoint, error) {
	var out [][]LineSizePoint
	for _, name := range appNames {
		pts, err := LineSizeSweep(name, procs, cacheSize, lineSizes, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, pts)
	}
	return out, nil
}

// RenderLineSizeMisses prints Figure 7 (miss decomposition vs line size).
func RenderLineSizeMisses(w io.Writer, groups [][]LineSizePoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Code\tLine\tCold%\tCap%\tTrue%\tFalse%\tUpgrades%\tTotal miss%")
	for _, pts := range groups {
		for _, l := range pts {
			fmt.Fprintf(tw, "%s\t%dB\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
				l.App, l.LineSize, l.ColdPct, l.CapacityPct, l.TruePct, l.FalsePct, l.UpgradePct, l.TotalMissPct())
		}
	}
	tw.Flush()
}

// RenderLineSizeTraffic prints Figure 8 (traffic vs line size).
func RenderLineSizeTraffic(w io.Writer, groups [][]LineSizePoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Code\tLine\tUnit\tRemote data\tRemote ovhd\tLocal data\tTotal")
	for _, pts := range groups {
		for _, l := range pts {
			unit := "B/instr"
			if l.PerFlop {
				unit = "B/FLOP"
			}
			fmt.Fprintf(tw, "%s\t%dB\t%s\t%.4f\t%.4f\t%.4f\t%.4f\n",
				l.App, l.LineSize, unit, l.RemoteData, l.RemoteOverhead, l.LocalData,
				l.RemoteData+l.RemoteOverhead+l.LocalData)
		}
	}
	tw.Flush()
}
