package core

import (
	"fmt"
	"io"
	"time"

	"splash2/internal/fault"
	"splash2/internal/memsys"
	"splash2/internal/textplot"
)

// ReportOptions controls the full characterization run.
type ReportOptions struct {
	Apps       []string
	Procs      int   // default 32 (the paper's fixed count, §2.2)
	ProcList   []int // speedup / traffic sweep points
	Scale      Scale
	AllAssocs  bool // Figure 3 with 1/2/4-way and fully associative
	Plot       bool // render ASCII charts alongside the tables
	CacheSizes []int
	LineSizes  []int

	// Workers is the experiment-level parallelism (0 = GOMAXPROCS).
	// Results are identical at any setting: each experiment is
	// deterministic under PRAM timing, so scheduling cannot change them.
	Workers int
	// CacheDir roots the content-addressed result cache; empty disables
	// caching (cmd/characterize defaults it to <user cache dir>/splash2).
	CacheDir string
	// Progress receives live per-job completion lines (normally stderr).
	Progress io.Writer

	// KeepGoing completes the characterization past failed experiments:
	// lost rows render as FAILED(label: cause) placeholders and the run
	// ends with a failure manifest plus an ErrFailures-wrapped error.
	KeepGoing bool
	// Timeout bounds each experiment attempt; 0 disables.
	Timeout time.Duration
	// Retries grants extra attempts to transiently failing experiments.
	Retries int
	// RetryBackoff is the first-retry delay (doubling per retry);
	// ≤ 0 selects the scheduler default.
	RetryBackoff time.Duration
	// Fault injects deterministic faults (tests, chaos drills); nil
	// disables injection.
	Fault *fault.Injector
	// ManifestOut receives the JSON failure manifest at the end of a
	// keep-going run that lost experiments; nil skips writing it.
	ManifestOut io.Writer

	// SampleRate, when positive, adds the SHARDS-sampled working-set
	// estimate (with confidence bands) alongside the exact Figure-3 sweep
	// (cmd/characterize's -sample-rate flag); range (0, 1].
	SampleRate float64
	// SampleSeed seeds the estimator's spatial hash (0 selects 1).
	SampleSeed uint64

	// ExecMode selects live simulation or record-then-replay for
	// full-memory experiments (cmd/characterize's -mode flag).
	ExecMode ExecMode
	// SpillTraces streams recorded traces to on-disk columnar v2
	// containers and replays them out of core (cmd/characterize's
	// -spill-traces flag); see EngineOptions.SpillTraces.
	SpillTraces bool

	// LeaseTTL configures cross-process work leases (see
	// EngineOptions.LeaseTTL): 0 default, negative disables.
	LeaseTTL time.Duration
	// NoJournal disables the durable run journal (see
	// EngineOptions.NoJournal).
	NoJournal bool
	// Deadline bounds the whole run; 0 disables (see
	// EngineOptions.Deadline).
	Deadline time.Duration
}

// engineOptions extracts the scheduler configuration.
func (o ReportOptions) engineOptions() EngineOptions {
	return EngineOptions{
		Workers:      o.Workers,
		CacheDir:     o.CacheDir,
		Progress:     o.Progress,
		KeepGoing:    o.KeepGoing,
		Timeout:      o.Timeout,
		Retries:      o.Retries,
		RetryBackoff: o.RetryBackoff,
		Fault:        o.Fault,
		ExecMode:     o.ExecMode,
		SpillTraces:  o.SpillTraces,
		LeaseTTL:     o.LeaseTTL,
		NoJournal:    o.NoJournal,
		Deadline:     o.Deadline,
	}
}

// WithDefaults fills unset fields.
func (o ReportOptions) WithDefaults() ReportOptions {
	if len(o.Apps) == 0 {
		o.Apps = Suite
	}
	if o.Procs == 0 {
		o.Procs = 32
	}
	if len(o.ProcList) == 0 {
		o.ProcList = []int{1, 2, 4, 8, 16, 32}
	}
	if len(o.CacheSizes) == 0 {
		o.CacheSizes = DefaultCacheSizes()
	}
	if len(o.LineSizes) == 0 {
		o.LineSizes = DefaultLineSizes()
	}
	return o
}

// Report runs the complete characterization — every table and figure of
// the paper — writing the formatted results to w. Experiments are
// scheduled through a runner configured by o.Workers, o.CacheDir and
// o.Progress; identical experiments needed by several sections execute
// once.
func Report(w io.Writer, o ReportOptions) error {
	e, err := NewEngine(o.engineOptions())
	if err != nil {
		return err
	}
	defer e.Close()
	return e.Report(w, o)
}

// Report is the engine form of the package-level Report.
func (e *Engine) Report(w io.Writer, o ReportOptions) error {
	o = o.WithDefaults()

	fmt.Fprintf(w, "SPLASH-2 characterization — %d processors, scale=%v\n\n", o.Procs, o.Scale)

	fmt.Fprintln(w, "== Table 1: instruction breakdown ==")
	t1, err := e.Table1(o.Apps, o.Procs, o.Scale)
	if err != nil {
		return err
	}
	RenderTable1(w, t1)

	fmt.Fprintln(w, "\n== Figure 1: PRAM speedups ==")
	sp, err := e.Speedups(o.Apps, o.ProcList, o.Scale)
	if err != nil {
		return err
	}
	RenderSpeedups(w, sp)
	if o.Plot {
		var xs []string
		for _, p := range o.ProcList {
			xs = append(xs, fmt.Sprintf("%d", p))
		}
		var series []textplot.Series
		for _, c := range sp {
			if c.Failed != "" {
				continue
			}
			series = append(series, textplot.Series{Name: c.App, Values: c.Speedup})
		}
		fmt.Fprintln(w)
		textplot.LineChart(w, "speedup vs processors", xs, series, 64, 16)
	}

	fmt.Fprintf(w, "\n== Figure 2: time in synchronization (%d procs) ==\n", o.Procs)
	sync, err := e.SyncProfiles(o.Apps, o.Procs, o.Scale)
	if err != nil {
		return err
	}
	RenderSyncProfiles(w, sync)

	fmt.Fprintln(w, "\n== Figure 3: miss rate vs cache size and associativity ==")
	assocs := []int{4}
	if o.AllAssocs {
		assocs = []int{1, 2, 4, memsys.FullyAssoc}
	}
	ws, err := e.WorkingSets(o.Apps, o.Procs, o.CacheSizes, assocs, o.Scale)
	if err != nil {
		return err
	}
	RenderMissCurves(w, ws)

	if o.Plot {
		var xs []string
		for _, cs := range o.CacheSizes {
			xs = append(xs, fmt.Sprintf("%dK", cs/1024))
		}
		var series []textplot.Series
		for _, c := range ws {
			if c.Assoc == 4 && c.Failed == "" {
				series = append(series, textplot.Series{Name: c.App, Values: c.MissRate})
			}
		}
		fmt.Fprintln(w)
		textplot.LineChart(w, "miss rate (%) vs cache size, 4-way", xs, series, 64, 16)
	}

	if o.SampleRate > 0 {
		seed := o.SampleSeed
		if seed == 0 {
			seed = 1
		}
		fmt.Fprintf(w, "\n== Sampled working sets (SHARDS estimate, rate %g, fully associative) ==\n", o.SampleRate)
		sw, err := e.WorkingSetsSampled(o.Apps, o.Procs, o.CacheSizes, o.SampleRate, seed, o.Scale)
		if err != nil {
			return err
		}
		RenderSampledCurves(w, sw)
	}

	fmt.Fprintln(w, "\n== Table 2: important working sets ==")
	var fourWay []MissCurve
	for _, c := range ws {
		if c.Assoc == 4 {
			fourWay = append(fourWay, c)
		}
	}
	RenderTable2(w, Table2(fourWay))

	fmt.Fprintln(w, "\n== Operating-point pruning (§5 methodology) ==")
	var advice []PruneAdvice
	for _, c := range fourWay {
		if c.Failed != "" {
			continue
		}
		advice = append(advice, Prune(c))
	}
	RenderPrune(w, advice)

	fmt.Fprintln(w, "\n== Figure 4: traffic breakdown, 1 MB caches ==")
	tr, err := e.TrafficSuite(o.Apps, o.ProcList, 1<<20, o.Scale)
	if err != nil {
		return err
	}
	RenderTraffic(w, tr)

	fmt.Fprintln(w, "\n== Bandwidth needs (§6, per processor at 200M ops/s) ==")
	RenderBandwidth(w, tr, 200e6)
	if o.Plot {
		var rows []string
		var bars [][]textplot.Segment
		for _, pts := range tr {
			last := pts[len(pts)-1]
			if last.Failed != "" {
				continue
			}
			rows = append(rows, fmt.Sprintf("%s@%d", last.App, last.Procs))
			bars = append(bars, []textplot.Segment{
				{Label: "rem.data", Value: last.RemoteShared + last.RemoteCold + last.RemoteCapacity + last.RemoteWriteback},
				{Label: "rem.ovhd", Value: last.RemoteOverhead},
				{Label: "local", Value: last.LocalData},
			})
		}
		fmt.Fprintln(w)
		textplot.StackedBars(w, "traffic breakdown (B/op) at max P", rows, bars, 48)
	}

	fmt.Fprintln(w, "\n== Table 3: growth of communication-to-computation ratio ==")
	lowP := o.ProcList[0]
	if lowP < 2 && len(o.ProcList) > 1 {
		lowP = o.ProcList[1]
	}
	t3, err := e.Table3(o.Apps, lowP, o.ProcList[len(o.ProcList)-1], o.Scale)
	if err != nil {
		return err
	}
	RenderTable3(w, t3)

	fmt.Fprintln(w, "\n== Figure 5: Ocean traffic at two problem sizes ==")
	oceanSmall, err := e.Traffic("ocean", o.ProcList, 1<<20, o.Scale, nil)
	if err != nil {
		return err
	}
	bigN := 64
	if o.Scale == DefaultScale {
		bigN = 128
	}
	oceanBig, err := e.Traffic("ocean", o.ProcList, 1<<20, o.Scale, map[string]int{"n": bigN})
	if err != nil {
		return err
	}
	RenderTraffic(w, [][]TrafficPoint{oceanSmall, oceanBig})
	fmt.Fprintf(w, "(second group: n=%d)\n", bigN)

	fmt.Fprintln(w, "\n== Figure 6: traffic with 64 KB caches (working set does not fit) ==")
	small := []string{"fft", "ocean", "radix", "raytrace"}
	tr64, err := e.TrafficSuite(small, o.ProcList, 64<<10, o.Scale)
	if err != nil {
		return err
	}
	RenderTraffic(w, tr64)

	fmt.Fprintln(w, "\n== Figure 7: miss decomposition vs line size (1 MB caches) ==")
	lsz, err := e.LineSizeSuite(o.Apps, o.Procs, 1<<20, o.LineSizes, o.Scale)
	if err != nil {
		return err
	}
	RenderLineSizeMisses(w, lsz)

	fmt.Fprintln(w, "\n== Figure 8: traffic vs line size (1 MB caches) ==")
	RenderLineSizeTraffic(w, lsz)

	return e.finishReport(w, o)
}

// finishReport closes a keep-going run: when experiments were lost it
// writes the failure manifest (to o.ManifestOut if set), summarizes the
// damage in the report itself, and returns an ErrFailures-wrapped error
// so callers can distinguish degraded completion from clean success.
func (e *Engine) finishReport(w io.Writer, o ReportOptions) error {
	if !e.keepGoing {
		return nil
	}
	fails := e.Failures()
	if len(fails) == 0 {
		return nil
	}
	m := NewFailureManifest(fails)
	fmt.Fprintf(w, "\n== Failure manifest: %d experiment(s) lost ==\n", m.Count)
	for _, rec := range m.Failures {
		fmt.Fprintf(w, "  %s: %s\n", rec.Label, rec.Cause)
	}
	if o.ManifestOut != nil {
		if err := m.WriteJSON(o.ManifestOut); err != nil {
			return fmt.Errorf("core: writing failure manifest: %w", err)
		}
	}
	return fmt.Errorf("core: %d experiment(s) lost: %w", m.Count, ErrFailures)
}
