package core

import (
	"bytes"
	"strings"
	"testing"

	"splash2/internal/apps"
	_ "splash2/internal/apps/all"
	"splash2/internal/mach"
	"splash2/internal/memsys"
)

// fast subset of apps for unit tests of the experiment drivers.
var fastApps = []string{"fft", "lu", "radix"}

func TestTable1(t *testing.T) {
	rows, err := Table1(fastApps, 4, SweepScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(fastApps) {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.Instr == 0 || r.Reads == 0 || r.Writes == 0 {
			t.Fatalf("%s: empty counters %+v", r.App, r)
		}
		if r.Instr < r.Reads+r.Writes+r.Flops {
			t.Fatalf("%s: instr %d < reads+writes+flops", r.App, r.Instr)
		}
		if r.App == "lu" && r.Flops == 0 {
			t.Fatal("lu without flops")
		}
		if r.BarriersPerProc == 0 && r.App != "radix" && r.App != "cholesky" {
			if r.App == "lu" || r.App == "fft" {
				t.Fatalf("%s: no barriers", r.App)
			}
		}
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "lu") {
		t.Fatal("render missing app")
	}
}

func TestSpeedupsMonotoneAndBounded(t *testing.T) {
	curves, err := Speedups([]string{"fft"}, []int{1, 2, 4}, SweepScale)
	if err != nil {
		t.Fatal(err)
	}
	c := curves[0]
	if c.Speedup[0] != 1 {
		t.Fatalf("speedup at P=1 is %v", c.Speedup[0])
	}
	for i, p := range c.Procs {
		if c.Speedup[i] > float64(p)*1.01 {
			t.Fatalf("superlinear PRAM speedup %v at P=%d", c.Speedup[i], p)
		}
	}
	if c.Speedup[2] <= c.Speedup[0] {
		t.Fatalf("fft does not speed up: %v", c.Speedup)
	}
	var buf bytes.Buffer
	RenderSpeedups(&buf, curves)
	if !strings.Contains(buf.String(), "P=4") {
		t.Fatal("render missing proc column")
	}
}

func TestSyncProfiles(t *testing.T) {
	profs, err := SyncProfiles([]string{"lu"}, 4, SweepScale)
	if err != nil {
		t.Fatal(err)
	}
	p := profs[0]
	if p.MinPct > p.AvgPct || p.AvgPct > p.MaxPct {
		t.Fatalf("ordering violated: %+v", p)
	}
	if p.MaxPct <= 0 || p.MaxPct > 100 {
		t.Fatalf("max pct out of range: %v", p.MaxPct)
	}
	var buf bytes.Buffer
	RenderSyncProfiles(&buf, profs)
	if !strings.Contains(buf.String(), "lu") {
		t.Fatal("render missing app")
	}
}

func TestWorkingSetsMonotone(t *testing.T) {
	sizes := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	curves, err := WorkingSets([]string{"lu"}, 4, sizes, []int{memsys.FullyAssoc}, SweepScale)
	if err != nil {
		t.Fatal(err)
	}
	c := curves[0]
	for i := 1; i < len(c.MissRate); i++ {
		if c.MissRate[i] > c.MissRate[i-1]+1e-9 {
			t.Fatalf("fully associative miss rate not monotone: %v", c.MissRate)
		}
	}
	if knee, drop := c.Knee(); knee == 0 || drop <= 0 {
		t.Fatalf("no knee found in %v", c.MissRate)
	}
}

func TestTable2UsesKnees(t *testing.T) {
	sizes := []int{1 << 10, 8 << 10, 64 << 10}
	curves, err := WorkingSets([]string{"lu", "fft"}, 2, sizes, []int{4}, SweepScale)
	if err != nil {
		t.Fatal(err)
	}
	rows := Table2(curves)
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.WS1 == "" || r.MeasuredKnee == 0 {
			t.Fatalf("incomplete row %+v", r)
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "one block") {
		t.Fatal("render missing static analysis")
	}
}

func TestTrafficBreakdownConsistency(t *testing.T) {
	pts, err := Traffic("fft", []int{1, 4}, 1<<20, SweepScale, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Remote() != 0 {
		t.Fatalf("uniprocessor remote traffic %v", pts[0].Remote())
	}
	if pts[1].Remote() == 0 {
		t.Fatal("4-processor FFT has no communication")
	}
	if !pts[0].PerFlop {
		t.Fatal("fft should be per-flop")
	}
	var buf bytes.Buffer
	RenderTraffic(&buf, [][]TrafficPoint{pts})
	if !strings.Contains(buf.String(), "B/FLOP") {
		t.Fatal("render missing unit")
	}
}

func TestTable3CommunicationGrows(t *testing.T) {
	rows, err := Table3([]string{"ocean"}, 2, 4, SweepScale)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.RatioHigh <= r.RatioLow {
		t.Fatalf("ocean comm/comp did not grow with P: %v → %v", r.RatioLow, r.RatioHigh)
	}
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
	if !strings.Contains(buf.String(), "ocean") {
		t.Fatal("render missing app")
	}
}

func TestLineSizeSweep(t *testing.T) {
	pts, err := LineSizeSweep("radix", 4, 1<<20, []int{16, 64, 256}, SweepScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points=%d", len(pts))
	}
	// Longer lines prefetch: total miss rate should fall from 16B to 256B
	// for a program with good spatial locality in its key arrays.
	if pts[2].TotalMissPct() >= pts[0].TotalMissPct() {
		t.Fatalf("long lines did not reduce radix miss rate: %v vs %v",
			pts[2].TotalMissPct(), pts[0].TotalMissPct())
	}
	var buf bytes.Buffer
	RenderLineSizeMisses(&buf, [][]LineSizePoint{pts})
	RenderLineSizeTraffic(&buf, [][]LineSizePoint{pts})
	if !strings.Contains(buf.String(), "256B") {
		t.Fatal("render missing line size")
	}
}

func TestRunVerifiedCatchesApps(t *testing.T) {
	if _, err := RunVerified("lu", mach.Config{Procs: 2, CacheSize: 64 << 10, Assoc: 4, LineSize: 64}, map[string]int{"n": 16, "b": 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run("nonexistent", mach.Config{Procs: 2}, nil); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	var buf bytes.Buffer
	o := ReportOptions{
		Apps:       []string{"fft", "lu"},
		Procs:      4,
		ProcList:   []int{1, 2, 4},
		Scale:      SweepScale,
		CacheSizes: []int{4 << 10, 64 << 10, 1 << 20},
		LineSizes:  []int{32, 64},
	}
	if err := Report(&buf, o); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Figure 1", "Figure 4", "Figure 7", "Figure 8", "Table 3"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %s", want)
		}
	}
}

func TestPaperScaleOverridesExistForSuite(t *testing.T) {
	for _, app := range Suite {
		o := PaperScale.Overrides(app)
		if len(o) == 0 {
			t.Errorf("%s has no paper-scale overrides", app)
		}
		sw := SweepScale.Overrides(app)
		if len(sw) == 0 {
			t.Errorf("%s has no sweep-scale overrides", app)
		}
		// Paper problems must be strictly larger than sweep problems in
		// their leading size parameter.
		for k, v := range o {
			if swv, ok := sw[k]; ok && k != "steps" && k != "iters" && k != "frames" && v < swv {
				t.Errorf("%s: paper %s=%d < sweep %d", app, k, v, swv)
			}
		}
	}
}

func TestScaleOverridesAreValidOptions(t *testing.T) {
	for _, app := range Suite {
		a, err := apps.Get(app)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range []Scale{SweepScale, PaperScale} {
			for k := range sc.Overrides(app) {
				if _, ok := a.Defaults[k]; !ok {
					t.Errorf("%s: scale override %q is not a registered option", app, k)
				}
			}
		}
	}
}
