package core

import (
	"fmt"
	"io"
	"text/tabwriter"

	"splash2/internal/mach"
	"splash2/internal/runner"
)

// Table1Row is the instruction breakdown of one program (paper Table 1):
// instructions executed decomposed into floating point operations, reads
// and writes (total and shared), plus synchronization operation counts —
// barriers per processor, locks and pauses across all processors.
type Table1Row struct {
	App             string
	Instr           uint64
	Flops           uint64
	Reads, Writes   uint64
	SharedReads     uint64
	SharedWrites    uint64
	BarriersPerProc uint64
	Locks           uint64
	Pauses          uint64

	// Failed is the FAILED(label: cause) placeholder when this program's
	// run was lost in a keep-going characterization; the counters are
	// meaningless then.
	Failed string `json:"failed,omitempty"`
}

// Table1 runs every program at its scale's problem size on procs
// processors under the count-only memory model (PRAM timing is identical
// and Table 1 needs no cache simulation).
func Table1(appNames []string, procs int, scale Scale) ([]Table1Row, error) {
	return serialEngine().Table1(appNames, procs, scale)
}

// Table1 schedules the per-program executions on the engine's worker
// pool; runs are shared with Figures 1–2 through the result store.
func (e *Engine) Table1(appNames []string, procs int, scale Scale) ([]Table1Row, error) {
	g := e.newGraph()
	jobs := make([]runner.Job[*RunResult], len(appNames))
	for i, name := range appNames {
		jobs[i] = e.runJob(g, name, mach.Config{Procs: procs, MemModel: mach.CountOnly}, scale.Overrides(name))
	}
	if err := g.Wait(e.ctx); err != nil {
		return nil, err
	}
	var rows []Table1Row
	for i, name := range appNames {
		res, failed, err := degrade(e, jobs[i])
		if err != nil {
			return nil, err
		}
		if failed != "" {
			rows = append(rows, Table1Row{App: name, Failed: failed})
			continue
		}
		a := mach.Aggregate(res.Stats.Procs)
		rows = append(rows, Table1Row{
			App:             name,
			Instr:           a.Instr,
			Flops:           a.Flops,
			Reads:           a.Reads,
			Writes:          a.Writes,
			SharedReads:     a.SharedReads,
			SharedWrites:    a.SharedWrites,
			BarriersPerProc: a.Barriers / uint64(procs),
			Locks:           a.Locks,
			Pauses:          a.Pauses,
		})
	}
	return rows, nil
}

// RenderTable1 prints the rows in the paper's column layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Code\tTotal Instr\tTotal FLOPS\tTotal Reads\tTotal Writes\tShared Reads\tShared Writes\tBarriers\tLocks\tPauses")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(tw, "%s\t%s\n", r.App, r.Failed)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.App, r.Instr, r.Flops, r.Reads, r.Writes, r.SharedReads, r.SharedWrites,
			r.BarriersPerProc, r.Locks, r.Pauses)
	}
	tw.Flush()
}
