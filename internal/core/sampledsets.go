package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"splash2/internal/memsys"
	"splash2/internal/runner"
)

// SampledCurve is one program's SHARDS-estimated miss-rate curve at full
// associativity: the sampled twin of a fully-associative MissCurve row,
// with a confidence band around every point. The estimator replays a
// spatially-hashed subset of the trace (see memsys.SampledStackDistances),
// so a curve costs a fraction of the exact stack-distance pass while the
// band quantifies what that fraction gave up.
type SampledCurve struct {
	App        string
	CacheSizes []int
	MissRate   []float64 // percent, estimated
	BandLo     []float64 // percent, lower 95% band
	BandHi     []float64 // percent, upper 95% band

	// Rate and SampleSeed identify the sampling configuration; EffRate is
	// the effective rate after adaptive threshold lowering (equal to Rate
	// unless MaxTracked forced evictions).
	Rate       float64
	EffRate    float64
	SampleSeed uint64
	// ExactLines is the exact-window width (lines): capacities at or
	// below ExactLines × 64 B are answered exactly, with zero-width
	// bands.
	ExactLines int

	// Failed is the FAILED(...) placeholder for a lost sweep (keep-going);
	// the data slices are empty then.
	Failed string `json:"failed,omitempty"`
}

// sampledSweep is the cacheable result of one program's sampled sweep.
type sampledSweep struct {
	Miss    []float64 // percent per cache size
	Lo, Hi  []float64 // percent per cache size
	EffRate float64
}

// WorkingSetsSampled estimates each program's fully-associative
// working-set curve by sampled reuse-distance analysis with 64-byte
// lines on procs processors.
func WorkingSetsSampled(appNames []string, procs int, cacheSizes []int, rate float64, seed uint64, scale Scale) ([]SampledCurve, error) {
	return serialEngine().WorkingSetsSampled(appNames, procs, cacheSizes, rate, seed, scale)
}

// WorkingSetsSampled schedules one lazy record job per program feeding a
// sampled sweep job, mirroring WorkingSets: a program whose estimate is
// served from the result cache is never re-executed, and an uncached
// estimate costs one sampled pass over the trace — a small fraction of
// the exact pass's work at low rates.
func (e *Engine) WorkingSetsSampled(appNames []string, procs int, cacheSizes []int, rate float64, seed uint64, scale Scale) ([]SampledCurve, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("core: sample rate %v out of range (0, 1]", rate)
	}
	g := e.newGraph()
	sweeps := make(map[string]runner.Job[sampledSweep], len(appNames))
	for _, name := range appNames {
		id := traceIdent{App: name, Procs: procs, Opts: canonOpts(scale.Overrides(name))}
		rec := e.recordJob(g, id)
		sweeps[name] = e.sampledSweepJob(g, rec, id, cacheSizes, rate, seed)
	}
	if err := g.Wait(e.ctx); err != nil {
		return nil, err
	}
	var out []SampledCurve
	for _, name := range appNames {
		sw, failed, err := degrade(e, sweeps[name])
		if err != nil {
			return nil, err
		}
		c := SampledCurve{
			App: name, CacheSizes: cacheSizes,
			Rate: rate, SampleSeed: seed, ExactLines: memsys.DefaultExactLines,
		}
		if failed != "" {
			c.Failed = failed
		} else {
			c.MissRate, c.BandLo, c.BandHi = sw.Miss, sw.Lo, sw.Hi
			c.EffRate = sw.EffRate
		}
		out = append(out, c)
	}
	return out, nil
}

// sampledSweepJob schedules one program's sampled working-set estimate
// as a single job (kind "wsweep-sampled"): every fully-associative cache
// size is answered by one sampled stack-distance pass. The key folds in
// the sampling rate, seed and exact-window width — estimates at
// different rates are different results and must not collide in the
// cache.
func (e *Engine) sampledSweepJob(g *runner.Graph, rec runner.Job[recordOut], id traceIdent, cacheSizes []int, rate float64, seed uint64) runner.Job[sampledSweep] {
	return runner.Submit(g, runner.Spec{
		Label: fmt.Sprintf("wsweep-sampled %s %d sizes @ %g", id.App, len(cacheSizes), rate),
		Key:   runner.KeyOf("wsweep-sampled", id, cacheSizes, 64, math.Float64bits(rate), seed, memsys.DefaultExactLines),
		Deps:  []runner.Handle{rec},
	}, func(ctx context.Context) (sampledSweep, error) {
		var sw sampledSweep
		if err := e.fault.Do(ctx, "sample.estimate:"+id.App); err != nil {
			return sw, err
		}
		out, err := rec.Result()
		if err != nil {
			return sw, err
		}
		maxSize := 0
		for _, cs := range cacheSizes {
			if cs > maxSize {
				maxSize = cs
			}
		}
		sp, err := memsys.SampledStackDistances(out.Trace, 64, maxSize, memsys.SampledOptions{
			Rate: rate, Seed: seed, ExactLines: memsys.DefaultExactLines,
		})
		if err != nil {
			return sw, err
		}
		for _, cs := range cacheSizes {
			mr, err := sp.EstMissRate(cs)
			if err != nil {
				return sw, err
			}
			lo, hi, err := sp.Band(cs)
			if err != nil {
				return sw, err
			}
			sw.Miss = append(sw.Miss, 100*mr)
			sw.Lo = append(sw.Lo, 100*lo)
			sw.Hi = append(sw.Hi, 100*hi)
		}
		sw.EffRate = sp.Rate()
		return sw, nil
	})
}

// RenderSampledCurves prints the estimated curves, one row per program,
// each cell an estimate with its 95% band.
func RenderSampledCurves(w io.Writer, curves []SampledCurve) {
	if len(curves) == 0 {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Code\tRate")
	for _, cs := range curves[0].CacheSizes {
		fmt.Fprintf(tw, "\t%dK", cs/1024)
	}
	fmt.Fprintln(tw)
	for _, c := range curves {
		fmt.Fprintf(tw, "%s\t%g", c.App, c.Rate)
		if c.Failed != "" {
			fmt.Fprintf(tw, "\t%s\n", c.Failed)
			continue
		}
		for i, mr := range c.MissRate {
			if c.BandLo[i] == c.BandHi[i] {
				fmt.Fprintf(tw, "\t%.2f%%", mr)
			} else {
				fmt.Fprintf(tw, "\t%.2f±%.2f%%", mr, (c.BandHi[i]-c.BandLo[i])/2)
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
