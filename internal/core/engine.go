package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"splash2/internal/fault"
	"splash2/internal/mach"
	"splash2/internal/memsys"
	"splash2/internal/runner"
)

// Engine executes the characterization experiments through the parallel
// scheduler in internal/runner. Every experiment is a job keyed by its
// content (program, options, machine configuration, experiment kind), so
// identical experiments run once per engine even when several figures
// need them (Table 1 and Figure 2 share runs; Table 3 reuses Figure 4's
// points; the Figure 3 and Figure 7–8 sweeps share one recorded trace
// per program), and an optional on-disk cache carries results across
// processes. PRAM timing makes each experiment deterministic regardless
// of scheduling, so an Engine at any parallelism produces results
// deep-equal to the serial path.
type Engine struct {
	r         *runner.Runner
	ctx       context.Context
	cancel    context.CancelFunc // releases the engine deadline (root only)
	journal   *runner.Journal    // durable run journal (root only)
	keepGoing bool
	mode      ExecMode
	spillDir  string // non-empty: record jobs spill v2 traces here
	fault     *fault.Injector

	// Request scope (nil on a root engine): Scoped views share r — and
	// with it the worker pool, memo and cache — but carry their own
	// context, failure policy, progress sink and failure log, which is
	// how splashd isolates concurrent requests on one engine.
	onProgress runner.ProgressFunc
	scope      *requestScope
}

// requestScope collects the graphs created by one Scoped engine so its
// Failures() sees only that request's losses.
type requestScope struct {
	mu     sync.Mutex
	graphs []*runner.Graph
}

func (s *requestScope) add(g *runner.Graph) {
	s.mu.Lock()
	s.graphs = append(s.graphs, g)
	s.mu.Unlock()
}

func (s *requestScope) failures() []*runner.JobError {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*runner.JobError
	for _, g := range s.graphs {
		out = append(out, g.Failures()...)
	}
	return out
}

// ScopeOptions configures a request-scoped view of a shared engine.
type ScopeOptions struct {
	// Context cancels the scope's graphs; nil inherits the parent's.
	Context context.Context
	// KeepGoing sets the scope's failure policy (per request, independent
	// of the engine's and of other scopes').
	KeepGoing bool
	// ExecMode selects live simulation or record-then-replay for this
	// scope's full-memory experiments.
	ExecMode ExecMode
	// OnProgress receives this scope's job-completion events only; nil
	// disables. It must not block (see runner.ProgressFunc).
	OnProgress runner.ProgressFunc
}

// Scoped returns a request-scoped view of the engine: same runner (one
// worker pool, one memo, one cache — results computed by any scope warm
// every other), but its own context, failure policy, execution mode,
// progress sink and failure log. Failed jobs are never memoized or
// cached, so one scope's failures cannot poison another's results.
func (e *Engine) Scoped(o ScopeOptions) *Engine {
	ctx := o.Context
	if ctx == nil {
		ctx = e.ctx
	}
	return &Engine{
		r:          e.r,
		ctx:        ctx,
		keepGoing:  o.KeepGoing,
		mode:       o.ExecMode,
		spillDir:   e.spillDir,
		fault:      e.fault,
		onProgress: o.OnProgress,
		scope:      &requestScope{},
	}
}

// newGraph starts a graph configured for this engine's scope. Every
// engine method creates graphs through it.
func (e *Engine) newGraph() *runner.Graph {
	g := e.r.NewGraph()
	if e.scope != nil {
		g.SetKeepGoing(e.keepGoing)
		if e.onProgress != nil {
			g.OnProgress(e.onProgress)
		}
		e.scope.add(g)
	}
	return g
}

// ExecMode selects how full-memory experiments execute.
type ExecMode int

const (
	// LiveExec simulates the memory system inline with program execution
	// (the classic path).
	LiveExec ExecMode = iota
	// RecordReplayExec records each program's reference trace under the
	// count-only model (cheap with batched capture) and drives the cache
	// simulation from the trace via memsys.Replay. Per-processor counters
	// and PRAM times are identical to LiveExec — timing never depends on
	// the memory model — and traces are shared across configurations, so
	// multi-configuration reports re-execute each program once. Memory
	// statistics come from the replay interleaving, which orders
	// references deterministically at sync boundaries rather than by
	// live lock-acquisition order; results are cached under distinct
	// keys ("replayrun") so the two modes never alias.
	RecordReplayExec
)

// EngineOptions configures an Engine.
type EngineOptions struct {
	// Workers is the experiment-level parallelism; ≤ 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// CacheDir roots the on-disk result cache; empty disables it.
	CacheDir string
	// Progress receives live job-completion lines; nil disables them.
	Progress io.Writer
	// Context cancels in-flight experiment graphs; nil means Background.
	Context context.Context

	// KeepGoing runs every graph to completion past failed experiments:
	// sections render FAILED(...) placeholders for lost rows and the
	// failures accumulate for the end-of-run manifest (Failures).
	KeepGoing bool
	// Timeout bounds each experiment attempt; 0 disables.
	Timeout time.Duration
	// Retries grants extra attempts to transiently failing experiments.
	Retries int
	// RetryBackoff is the first-retry delay (doubling per retry);
	// ≤ 0 selects the scheduler default.
	RetryBackoff time.Duration
	// Fault is the deterministic fault injector threaded through job
	// execution and cache I/O; nil disables injection.
	Fault *fault.Injector

	// ExecMode selects live simulation or record-then-replay for
	// full-memory experiments (see ExecMode).
	ExecMode ExecMode

	// SpillTraces makes record jobs stream each recorded trace to an
	// on-disk columnar v2 container and replay it out of core through a
	// memsys.TraceFile, instead of holding the flat event stream in
	// memory — the difference between "fits" and "doesn't" for
	// paper-scale inputs. Spilled traces are content-addressed under
	// CacheDir/traces (a temporary directory when the cache is off) and
	// reused across processes after an integrity check.
	SpillTraces bool

	// LeaseTTL configures cross-process work leases on the cache (on by
	// default whenever CacheDir is set): 0 selects the default TTL,
	// negative disables leases. Leases coalesce expensive jobs across
	// processes sharing one cache directory; a crashed holder's lease
	// expires after the TTL and is taken over, never deadlocked on.
	LeaseTTL time.Duration
	// NoJournal disables the durable run journal. With a cache directory
	// set, each engine run otherwise appends its job lifecycle to
	// CacheDir/journal/<runID>.jsonl — the crash-forensics record that
	// `characterize -resume` reads back.
	NoJournal bool
	// Deadline bounds the whole engine run: jobs past it are cancelled
	// promptly (distinct from Timeout, which bounds one attempt).
	// 0 disables.
	Deadline time.Duration
}

// NewEngine creates an engine. It fails only when the cache or journal
// directory cannot be opened. Callers owning the engine's lifecycle
// should Close it when done so the run journal records a clean end.
func NewEngine(o EngineOptions) (*Engine, error) {
	var cache *runner.Cache
	var journal *runner.Journal
	if o.CacheDir != "" {
		c, err := runner.OpenCache(o.CacheDir)
		if err != nil {
			return nil, err
		}
		cache = c
		cache.SetFault(o.Fault)
		if o.LeaseTTL >= 0 {
			cache.EnableLeases(o.LeaseTTL)
		}
		if !o.NoJournal {
			j, err := runner.OpenJournal(runner.JournalDir(o.CacheDir))
			if err != nil {
				return nil, err
			}
			j.SetFault(o.Fault)
			journal = j
		}
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	var cancel context.CancelFunc
	if o.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, o.Deadline)
	}
	var spillDir string
	if o.SpillTraces {
		spillDir = filepath.Join(os.TempDir(), "splash2-spill")
		if o.CacheDir != "" {
			spillDir = filepath.Join(o.CacheDir, "traces")
		}
		if err := os.MkdirAll(spillDir, 0o777); err != nil {
			if cancel != nil {
				cancel()
			}
			return nil, fmt.Errorf("core: opening trace spill directory: %w", err)
		}
		sweepSpillOrphans(spillDir, spillOrphanAge)
	}
	return &Engine{
		spillDir: spillDir,
		fault:    o.Fault,
		journal:  journal,
		cancel:   cancel,
		r: runner.New(runner.Options{
			Workers:      o.Workers,
			Cache:        cache,
			Progress:     o.Progress,
			KeepGoing:    o.KeepGoing,
			Timeout:      o.Timeout,
			Retries:      o.Retries,
			RetryBackoff: o.RetryBackoff,
			Fault:        o.Fault,
			Journal:      journal,
		}),
		ctx:       ctx,
		keepGoing: o.KeepGoing,
		mode:      o.ExecMode,
	}, nil
}

// Close ends the engine run cleanly: the run journal gets its run.end
// event (a journal without one is, by definition, a crashed run) and the
// engine deadline's resources are released. Safe on a Scoped view and
// safe to call more than once; experiments already in flight are not
// interrupted by Close itself.
func (e *Engine) Close() error {
	var err error
	if e.journal != nil {
		err = e.journal.Close(e.r.Counts())
		e.journal = nil
	}
	if e.cancel != nil {
		e.cancel()
	}
	return err
}

// Journal returns the engine's durable run journal, or nil when
// journaling is disabled (no cache directory, NoJournal, or a Scoped
// view — scopes share the root engine's journal through the runner).
func (e *Engine) Journal() *runner.Journal { return e.journal }

// Counts returns the engine's cumulative scheduling counters (jobs
// executed, cache hits, memo hits, retries, failures, skips).
func (e *Engine) Counts() runner.Counts { return e.r.Counts() }

// MemoStats reports the engine's long-lived state sizes (memo entries,
// failure-log length and overflow), for daemon memory monitoring.
func (e *Engine) MemoStats() runner.MemoStats { return e.r.MemoStats() }

// Failures returns every failed and skipped experiment recorded so far
// (keep-going mode); see NewFailureManifest for the manifest form. On a
// Scoped engine only this scope's failures are reported.
func (e *Engine) Failures() []*runner.JobError {
	if e.scope != nil {
		return e.scope.failures()
	}
	return e.r.Failures()
}

// DefaultCacheDir returns the default on-disk cache location
// (<user cache dir>/splash2).
func DefaultCacheDir() (string, error) { return runner.DefaultDir() }

// serialEngine returns a fresh single-worker engine with no disk cache:
// the exact serial semantics of the original inline loops. The
// package-level generator functions go through it, so each call performs
// real executions (no memo leaks across calls).
func serialEngine() *Engine {
	e, err := NewEngine(EngineOptions{Workers: 1})
	if err != nil { // unreachable: no cache dir is opened
		panic(err)
	}
	return e
}

// canonOpts normalizes option maps for hashing: empty and nil maps must
// produce the same key.
func canonOpts(m map[string]int) map[string]int {
	if len(m) == 0 {
		return nil
	}
	return m
}

// runIdent is the cache identity of a full-machine execution.
type runIdent struct {
	App      string         `json:"app"`
	Opts     map[string]int `json:"opts"`
	Mem      memsys.Config  `json:"mem"`
	MemModel int            `json:"memModel"`
}

// traceIdent is the cache identity of a recorded reference trace (and of
// every replay derived from it).
type traceIdent struct {
	App   string         `json:"app"`
	Procs int            `json:"procs"`
	Opts  map[string]int `json:"opts"`
}

// recordOut bundles what a record job produces: the reference stream —
// an in-memory *memsys.Trace, or a *memsys.TraceFile streaming a
// spilled v2 container out of core — plus the recording run's counters.
type recordOut struct {
	Trace memsys.TraceSource
	Stats mach.Stats
}

// runJob schedules one full program execution (experiment kind "run").
// Under RecordReplayExec, full-memory runs are rerouted through a trace
// recording plus replay; count-only runs have no memory system to
// simulate and always execute live.
func (e *Engine) runJob(g *runner.Graph, app string, cfg mach.Config, over map[string]int) runner.Job[*RunResult] {
	if e.mode == RecordReplayExec && cfg.MemModel == mach.FullMem {
		return e.replayRunJob(g, app, cfg, over)
	}
	ident := runIdent{App: app, Opts: canonOpts(over), Mem: cfg.MemConfig(), MemModel: int(cfg.MemModel)}
	return runner.Submit(g, runner.Spec{
		Label: fmt.Sprintf("run %s p=%d cache=%dK/%d-way/%dB model=%d",
			app, ident.Mem.Procs, ident.Mem.CacheSize/1024, ident.Mem.Assoc, ident.Mem.LineSize, cfg.MemModel),
		Key: runner.KeyOf("run", ident),
	}, func(ctx context.Context) (*RunResult, error) {
		return Run(app, cfg, over)
	})
}

// replayRunJob schedules a full-memory experiment as record + replay
// (kind "replayrun"): the program executes once under count-only
// recording — shared with every other configuration that needs the same
// trace — and the memory statistics come from replaying the trace
// through the requested cache configuration. Processor counters and the
// PRAM time are the recording run's: timing is independent of the
// memory model, so they equal a live run's exactly.
func (e *Engine) replayRunJob(g *runner.Graph, app string, cfg mach.Config, over map[string]int) runner.Job[*RunResult] {
	mc := cfg.MemConfig()
	tid := traceIdent{App: app, Procs: mc.Procs, Opts: canonOpts(over)}
	rec := e.recordJob(g, tid)
	ident := runIdent{App: app, Opts: canonOpts(over), Mem: mc, MemModel: int(cfg.MemModel)}
	return runner.Submit(g, runner.Spec{
		Label: fmt.Sprintf("replayrun %s p=%d cache=%dK/%d-way/%dB",
			app, mc.Procs, mc.CacheSize/1024, mc.Assoc, mc.LineSize),
		Key:  runner.KeyOf("replayrun", ident),
		Deps: []runner.Handle{rec},
	}, func(ctx context.Context) (*RunResult, error) {
		out, err := rec.Result()
		if err != nil {
			return nil, err
		}
		mem, err := memsys.Replay(out.Trace, mc)
		if err != nil {
			return nil, err
		}
		st := out.Stats // struct copy; Procs slice is shared read-only
		st.Mem = mem
		return &RunResult{App: app, Cfg: cfg, Stats: st}, nil
	})
}

// recordJob schedules one trace recording (kind "record"). It is lazy —
// it runs only when an uncached replay demands the trace — and is never
// written to the disk cache (traces are large; replay results are cached
// instead), though it is memoized in memory so the Figure-3 and
// Figure-7/8 sweeps share a single recording per program.
func (e *Engine) recordJob(g *runner.Graph, id traceIdent) runner.Job[recordOut] {
	if e.spillDir != "" {
		return e.recordSpillJob(g, id)
	}
	return runner.Submit(g, runner.Spec{
		Label:   fmt.Sprintf("record %s p=%d", id.App, id.Procs),
		Key:     runner.KeyOf("record", id),
		Lazy:    true,
		NoStore: true,
	}, func(ctx context.Context) (recordOut, error) {
		tr, st, err := RecordApp(id.App, id.Procs, id.Opts)
		return recordOut{Trace: tr, Stats: st}, err
	})
}

// recordStatsJob schedules extraction of the recording run's counters
// (kind "recordstats"). Unlike the trace itself these are small and
// disk-cacheable, so a fully-cached line-size sweep never re-records.
func (e *Engine) recordStatsJob(g *runner.Graph, rec runner.Job[recordOut], id traceIdent) runner.Job[mach.Stats] {
	return runner.Submit(g, runner.Spec{
		Label: fmt.Sprintf("recordstats %s p=%d", id.App, id.Procs),
		Key:   runner.KeyOf("recordstats", id),
		Deps:  []runner.Handle{rec},
	}, func(ctx context.Context) (mach.Stats, error) {
		out, err := rec.Result()
		return out.Stats, err
	})
}

// ReplaySweep replays an already-loaded reference stream (an in-memory
// trace or an opened TraceFile) through each configuration in parallel.
// Replays are keyed by a digest of the stream content — the digest is
// format-independent (v1 bytes of the same events), so converting a
// trace file between v1 and v2 never invalidates cached replays.
func (e *Engine) ReplaySweep(src memsys.TraceSource, cfgs []memsys.Config) ([]memsys.Stats, error) {
	wt, ok := src.(io.WriterTo)
	if !ok {
		return nil, fmt.Errorf("core: trace source %T is not digestable (io.WriterTo)", src)
	}
	h := sha256.New()
	if _, err := wt.WriteTo(h); err != nil {
		return nil, err
	}
	digest := hex.EncodeToString(h.Sum(nil))
	g := e.newGraph()
	jobs := make([]runner.Job[memsys.Stats], len(cfgs))
	for i, cfg := range cfgs {
		cfg := cfg.WithDefaults()
		jobs[i] = runner.Submit(g, runner.Spec{
			Label: fmt.Sprintf("replay trace %dK/%s/%dB", cfg.CacheSize/1024, assocLabel(cfg.Assoc), cfg.LineSize),
			Key:   runner.KeyOf("replayfile", digest, cfg),
		}, func(ctx context.Context) (memsys.Stats, error) {
			return memsys.Replay(src, cfg)
		})
	}
	if err := g.Wait(e.ctx); err != nil {
		return nil, err
	}
	out := make([]memsys.Stats, len(cfgs))
	for i, j := range jobs {
		st, err := j.Result()
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// ReplaySweep is the package-level serial form of Engine.ReplaySweep
// with configurable parallelism and no disk cache.
func ReplaySweep(src memsys.TraceSource, cfgs []memsys.Config, workers int) ([]memsys.Stats, error) {
	e, err := NewEngine(EngineOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	return e.ReplaySweep(src, cfgs)
}
