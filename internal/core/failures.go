package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"splash2/internal/runner"
)

// ErrFailures marks a keep-going characterization that completed but
// lost experiments: the tables and figures were produced with FAILED
// placeholders, and the failure manifest says what is missing. Callers
// (cmd/characterize) detect it with errors.Is to exit with the
// completed-with-failures status instead of a hard error.
var ErrFailures = errors.New("characterization completed with failures")

// FailureRecord is one lost experiment in the failure manifest.
type FailureRecord struct {
	// Label is the experiment's job label (e.g. "run fft p=4 ...").
	Label string `json:"label"`
	// Key is the experiment's content address ("" for uncacheable jobs).
	Key string `json:"key,omitempty"`
	// Attempts is how many times the job ran before giving up.
	Attempts int `json:"attempts,omitempty"`
	// Panicked, TimedOut and Skipped classify the failure; Skipped means
	// the experiment never ran because a dependency failed.
	Panicked bool `json:"panicked,omitempty"`
	TimedOut bool `json:"timedOut,omitempty"`
	Skipped  bool `json:"skipped,omitempty"`
	// Cause is the failure text (without the label prefix).
	Cause string `json:"cause"`
}

// FailureManifest is the end-of-run JSON account of every lost
// experiment in a keep-going characterization.
type FailureManifest struct {
	Count    int             `json:"count"`
	Failures []FailureRecord `json:"failures"`
}

// NewFailureManifest converts the scheduler's failure log into a
// manifest: one record per distinct job label (a job resubmitted by a
// later section appears once), sorted by label for stable output.
func NewFailureManifest(fails []*runner.JobError) FailureManifest {
	seen := map[string]bool{}
	var recs []FailureRecord
	for _, je := range fails {
		if seen[je.Label] {
			continue
		}
		seen[je.Label] = true
		recs = append(recs, FailureRecord{
			Label:    je.Label,
			Key:      je.Key,
			Attempts: je.Attempts,
			Panicked: je.Panicked,
			TimedOut: je.TimedOut,
			Skipped:  je.Skipped,
			Cause:    je.Cause(),
		})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Label < recs[j].Label })
	return FailureManifest{Count: len(recs), Failures: recs}
}

// WriteJSON emits the manifest as indented JSON.
func (m FailureManifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// failedCell renders a failed experiment's table cell. JobError messages
// are "label: cause", giving the FAILED(label: cause) placeholder format.
func failedCell(err error) string {
	return fmt.Sprintf("FAILED(%v)", err)
}

// degrade resolves a job under the engine's failure policy. Fail-fast
// engines surface the error; keep-going engines convert it into a
// FAILED(...) placeholder so the section renders a partial table and the
// run continues.
func degrade[T any](e *Engine, j runner.Job[T]) (v T, failed string, err error) {
	v, err = j.Result()
	if err == nil {
		return v, "", nil
	}
	var zero T
	if e.keepGoing {
		return zero, failedCell(err), nil
	}
	return zero, "", err
}
