package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"splash2/internal/apps"
	"splash2/internal/runner"
)

// Request is the request-shaped entry point into the characterization
// engine: one experiment spec — which table or figure, over which
// programs and machine parameters — expressed as plain data, so it can
// arrive as a JSON body or URL query (splashd) as easily as from CLI
// flags. A canonicalized Request has a content-addressed Key derived
// from the same suite-versioned hashing as the result cache, which is
// what splashd's coalescing and ETag semantics key on.
type Request struct {
	// Kind selects the experiment: one of Kinds (table1, speedups, sync,
	// workingsets, traffic, linesize, table3, results).
	Kind string `json:"kind"`
	// Apps is the program subset; empty selects the full suite. Order is
	// significant (it is the row order of the result).
	Apps []string `json:"apps,omitempty"`
	// Procs is the processor count for fixed-count experiments
	// (default 32).
	Procs int `json:"procs,omitempty"`
	// ProcList holds the sweep points of scaling experiments (speedups,
	// traffic, table3); it is deduplicated and sorted ascending.
	ProcList []int `json:"procList,omitempty"`
	// Scale names the problem sizes: "sweep" (default), "default" or
	// "paper".
	Scale string `json:"scale,omitempty"`
	// Mode names the execution mode: "live" (default) or "record-replay".
	Mode string `json:"mode,omitempty"`
	// CacheSizes are the Figure-3 sweep points (workingsets only);
	// default 1 KB–1 MB powers of two.
	CacheSizes []int `json:"cacheSizes,omitempty"`
	// Assocs are the Figure-3 associativities (workingsets only);
	// 0 means fully associative. Default {4}.
	Assocs []int `json:"assocs,omitempty"`
	// CacheSize is the fixed cache capacity of traffic and linesize
	// experiments; default 1 MB.
	CacheSize int `json:"cacheSize,omitempty"`
	// LineSizes are the Figure-7/8 sweep points (linesize only); default
	// 8 B–256 B powers of two.
	LineSizes []int `json:"lineSizes,omitempty"`
	// Opts are per-program option overrides applied on top of the scale's
	// defaults (single-app requests only; ignored otherwise).
	Opts map[string]int `json:"opts,omitempty"`
	// SampleRate is the spatial sampling rate of the sampled working-set
	// estimator (working-set-sampled only); default 0.01, range (0, 1].
	SampleRate float64 `json:"sampleRate,omitempty"`
	// SampleSeed seeds the estimator's spatial hash (default 1).
	SampleSeed uint64 `json:"sampleSeed,omitempty"`
	// KeepGoing completes the experiment past failures: lost rows carry
	// FAILED placeholders and the response includes a failure manifest.
	KeepGoing bool `json:"keepGoing,omitempty"`
	// TimeoutMillis is the request deadline in milliseconds: the request
	// fails with context.DeadlineExceeded (splashd: 504) when its
	// experiments cannot finish in time, instead of running doomed work
	// to completion. 0 means no deadline. The deadline is excluded from
	// the request's Key/ETag — how long a client will wait does not
	// change what the answer is, so impatient and patient requests for
	// the same experiment still coalesce.
	TimeoutMillis int64 `json:"timeoutMs,omitempty"`
}

// Kinds lists the accepted Request.Kind values in presentation order.
func Kinds() []string {
	return []string{
		KindTable1, KindSpeedups, KindSync, KindWorkingSets,
		KindWorkingSetsSampled, KindTraffic, KindLineSize, KindTable3,
		KindResults,
	}
}

// Request kinds: one per paper table/figure plus the full bundle.
const (
	KindTable1      = "table1"      // Table 1: instruction breakdown
	KindSpeedups    = "speedups"    // Figure 1: PRAM speedups
	KindSync        = "sync"        // Figure 2: synchronization profiles
	KindWorkingSets = "workingsets" // Figure 3 + Table 2 + pruning advice
	KindTraffic     = "traffic"     // Figures 4–6: traffic breakdowns
	KindLineSize    = "linesize"    // Figures 7–8: line-size sweeps
	KindTable3      = "table3"      // Table 3: comm-to-comp growth
	KindResults     = "results"     // the full characterization bundle

	// KindWorkingSetsSampled is Figure 3's fully-associative curve by
	// SHARDS-sampled reuse-distance estimation with confidence bands — a
	// cheap preview of KindWorkingSets.
	KindWorkingSetsSampled = "working-set-sampled"
)

// ParseScale resolves a scale name ("" selects sweep, the multi-point
// default).
func ParseScale(name string) (Scale, error) {
	switch name {
	case "", "sweep":
		return SweepScale, nil
	case "default":
		return DefaultScale, nil
	case "paper":
		return PaperScale, nil
	}
	return 0, fmt.Errorf("core: unknown scale %q (want sweep, default or paper)", name)
}

// ScaleName is ParseScale's inverse.
func ScaleName(s Scale) string {
	switch s {
	case DefaultScale:
		return "default"
	case PaperScale:
		return "paper"
	default:
		return "sweep"
	}
}

// ParseExecMode resolves an execution-mode name ("" selects live).
func ParseExecMode(name string) (ExecMode, error) {
	switch name {
	case "", "live":
		return LiveExec, nil
	case "record-replay":
		return RecordReplayExec, nil
	}
	return 0, fmt.Errorf("core: unknown mode %q (want live or record-replay)", name)
}

// ExecModeName is ParseExecMode's inverse.
func ExecModeName(m ExecMode) string {
	if m == RecordReplayExec {
		return "record-replay"
	}
	return "live"
}

// Request validation bounds. These are admission sanity limits for a
// service accepting untrusted specs, not physical limits: the memory
// system itself rejects inconsistent configurations (memsys.Config
// Validate) when a job runs.
const (
	maxReqProcs      = 64 // the directory's full-map sharer bitset width
	maxReqListPoints = 64
	maxReqOpts       = 32
	maxReqCacheBytes = 1 << 28
	maxReqLineBytes  = 1 << 12
)

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Canonical validates the request and fills defaults, returning the
// canonical form: two requests asking for the same experiment normalize
// to identical values, so their Keys collide and splashd coalesces them.
// Canonical is idempotent. Apps order is preserved (it orders the result
// rows); ProcList is deduplicated and sorted.
func (r Request) Canonical() (Request, error) {
	switch r.Kind {
	case KindTable1, KindSpeedups, KindSync, KindWorkingSets,
		KindWorkingSetsSampled, KindTraffic, KindLineSize, KindTable3,
		KindResults:
	case "":
		return r, fmt.Errorf("core: request missing kind (want one of %s)", strings.Join(Kinds(), ", "))
	default:
		return r, fmt.Errorf("core: unknown kind %q (want one of %s)", r.Kind, strings.Join(Kinds(), ", "))
	}

	if len(r.Apps) == 0 {
		r.Apps = append([]string(nil), Suite...)
	} else {
		r.Apps = append([]string(nil), r.Apps...)
		seen := make(map[string]bool, len(r.Apps))
		for _, name := range r.Apps {
			if _, err := apps.Get(name); err != nil {
				return r, fmt.Errorf("core: %w", err)
			}
			if seen[name] {
				return r, fmt.Errorf("core: duplicate app %q", name)
			}
			seen[name] = true
		}
	}
	if len(r.Opts) > 0 && len(r.Apps) != 1 {
		return r, fmt.Errorf("core: opts require a single-app request (got %d apps)", len(r.Apps))
	}
	if len(r.Opts) > maxReqOpts {
		return r, fmt.Errorf("core: too many opts (%d > %d)", len(r.Opts), maxReqOpts)
	}

	if r.Procs == 0 {
		r.Procs = 32
	}
	if r.Procs < 1 || r.Procs > maxReqProcs {
		return r, fmt.Errorf("core: procs %d out of range [1, %d]", r.Procs, maxReqProcs)
	}
	if len(r.ProcList) == 0 {
		r.ProcList = []int{1, 2, 4, 8, 16, 32}
	} else {
		if len(r.ProcList) > maxReqListPoints {
			return r, fmt.Errorf("core: procList has %d points (max %d)", len(r.ProcList), maxReqListPoints)
		}
		seen := make(map[int]bool, len(r.ProcList))
		var list []int
		for _, p := range r.ProcList {
			if p < 1 || p > maxReqProcs {
				return r, fmt.Errorf("core: procList entry %d out of range [1, %d]", p, maxReqProcs)
			}
			if !seen[p] {
				seen[p] = true
				list = append(list, p)
			}
		}
		sort.Ints(list)
		r.ProcList = list
	}

	if _, err := ParseScale(r.Scale); err != nil {
		return r, err
	}
	if r.Scale == "" {
		r.Scale = "sweep"
	}
	if _, err := ParseExecMode(r.Mode); err != nil {
		return r, err
	}
	if r.Mode == "" {
		r.Mode = "live"
	}

	if len(r.CacheSizes) == 0 {
		r.CacheSizes = DefaultCacheSizes()
	} else if len(r.CacheSizes) > maxReqListPoints {
		return r, fmt.Errorf("core: cacheSizes has %d points (max %d)", len(r.CacheSizes), maxReqListPoints)
	}
	for _, cs := range r.CacheSizes {
		if !isPow2(cs) || cs < 256 || cs > maxReqCacheBytes {
			return r, fmt.Errorf("core: cache size %d not a power of two in [256, %d]", cs, maxReqCacheBytes)
		}
	}
	if r.CacheSize == 0 {
		r.CacheSize = 1 << 20
	}
	if !isPow2(r.CacheSize) || r.CacheSize < 256 || r.CacheSize > maxReqCacheBytes {
		return r, fmt.Errorf("core: cache size %d not a power of two in [256, %d]", r.CacheSize, maxReqCacheBytes)
	}
	if len(r.Assocs) == 0 {
		r.Assocs = []int{4}
	}
	for _, a := range r.Assocs {
		if a != 0 && (!isPow2(a) || a > 64) {
			return r, fmt.Errorf("core: associativity %d not 0 (full) or a power of two ≤ 64", a)
		}
	}
	if len(r.LineSizes) == 0 {
		r.LineSizes = DefaultLineSizes()
	} else if len(r.LineSizes) > maxReqListPoints {
		return r, fmt.Errorf("core: lineSizes has %d points (max %d)", len(r.LineSizes), maxReqListPoints)
	}
	for _, ls := range r.LineSizes {
		if !isPow2(ls) || ls < 8 || ls > maxReqLineBytes {
			return r, fmt.Errorf("core: line size %d not a power of two in [8, %d]", ls, maxReqLineBytes)
		}
	}
	if r.SampleRate == 0 {
		r.SampleRate = 0.01
	}
	if r.SampleRate < 0 || r.SampleRate > 1 {
		return r, fmt.Errorf("core: sample rate %v out of range (0, 1]", r.SampleRate)
	}
	if r.SampleSeed == 0 {
		r.SampleSeed = 1
	}
	if r.TimeoutMillis < 0 {
		return r, fmt.Errorf("core: negative timeoutMs %d", r.TimeoutMillis)
	}
	r.Opts = canonOpts(r.Opts)
	return r, nil
}

// Deadline returns the request deadline as a duration (0 = none).
func (r Request) Deadline() time.Duration {
	return time.Duration(r.TimeoutMillis) * time.Millisecond
}

// Key is the request's content address: the suite-versioned hash of its
// canonical form, aligned with the result cache's keying so a request's
// identity changes exactly when its results could. Call on the canonical
// form (Key canonicalizes internally and panics on an invalid request —
// validate first).
func (r Request) Key() runner.Key {
	cr, err := r.Canonical()
	if err != nil {
		panic(fmt.Sprintf("core: Key of invalid request: %v", err))
	}
	// The deadline is patience, not identity: requests differing only in
	// TimeoutMillis ask for the same experiment and must coalesce.
	cr.TimeoutMillis = 0
	return runner.KeyOf("request", cr)
}

// ETag renders the request key as a strong HTTP entity tag. Because
// experiments are deterministic and the key folds in the suite version,
// a response's ETag changes exactly when its body could: a client
// revalidating with If-None-Match needs no execution at all to be told
// its copy is current.
func (r Request) ETag() string { return `"` + r.Key().String() + `"` }

// reportOptions shapes the canonical request into the options of the
// full-characterization path (kind "results").
func (r Request) reportOptions() ReportOptions {
	scale, _ := ParseScale(r.Scale)
	mode, _ := ParseExecMode(r.Mode)
	return ReportOptions{
		Apps:       r.Apps,
		Procs:      r.Procs,
		ProcList:   r.ProcList,
		Scale:      scale,
		CacheSizes: r.CacheSizes,
		LineSizes:  r.LineSizes,
		KeepGoing:  r.KeepGoing,
		ExecMode:   mode,
		// SampleRate/SampleSeed deliberately stay zero — "results" reports
		// the exact curves; the sampled estimator is its own kind (or
		// characterize -sample-rate).
	}
}

// Do executes one request on a request-scoped view of the engine and
// returns its results: the sections the kind selects, plus the failure
// manifest of a keep-going request that lost experiments (then err wraps
// ErrFailures, as with CollectResults). Progress events for this request
// alone stream to onProgress (nil disables). Do is safe to call from
// many goroutines at once; concurrent requests share the engine's worker
// pool, memo and cache.
func (e *Engine) Do(ctx context.Context, req Request, onProgress runner.ProgressFunc) (*Results, error) {
	cr, err := req.Canonical()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if d := cr.Deadline(); d > 0 {
		// Min semantics: never extend a deadline the caller already set.
		if cur, ok := ctx.Deadline(); !ok || time.Until(cur) > d { //splash:allow determinism deadline plumbing; cancellation timing, never in results
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
	}
	scale, _ := ParseScale(cr.Scale)
	mode, _ := ParseExecMode(cr.Mode)
	sc := e.Scoped(ScopeOptions{
		Context:    ctx,
		KeepGoing:  cr.KeepGoing,
		ExecMode:   mode,
		OnProgress: onProgress,
	})

	if cr.Kind == KindResults {
		return sc.CollectResults(cr.reportOptions())
	}

	res := &Results{Procs: cr.Procs}
	switch cr.Kind {
	case KindTable1:
		res.Table1, err = sc.Table1(cr.Apps, cr.Procs, scale)
	case KindSpeedups:
		res.Speedups, err = sc.Speedups(cr.Apps, cr.ProcList, scale)
	case KindSync:
		res.Sync, err = sc.SyncProfiles(cr.Apps, cr.Procs, scale)
	case KindWorkingSets:
		res.MissCurves, err = sc.WorkingSets(cr.Apps, cr.Procs, cr.CacheSizes, cr.Assocs, scale)
		if err == nil {
			var fourWay []MissCurve
			for _, c := range res.MissCurves {
				if c.Assoc == 4 {
					fourWay = append(fourWay, c)
				}
			}
			res.Table2 = Table2(fourWay)
			for _, c := range fourWay {
				if c.Failed == "" {
					res.PruneAdvice = append(res.PruneAdvice, Prune(c))
				}
			}
		}
	case KindWorkingSetsSampled:
		res.Sampled, err = sc.WorkingSetsSampled(cr.Apps, cr.Procs, cr.CacheSizes, cr.SampleRate, cr.SampleSeed, scale)
	case KindTraffic:
		if len(cr.Apps) == 1 {
			var pts []TrafficPoint
			pts, err = sc.Traffic(cr.Apps[0], cr.ProcList, cr.CacheSize, scale, cr.Opts)
			if err == nil {
				res.Traffic = [][]TrafficPoint{pts}
			}
		} else {
			res.Traffic, err = sc.TrafficSuite(cr.Apps, cr.ProcList, cr.CacheSize, scale)
		}
	case KindLineSize:
		res.LineSize, err = sc.LineSizeSuite(cr.Apps, cr.Procs, cr.CacheSize, cr.LineSizes, scale)
	case KindTable3:
		lowP := cr.ProcList[0]
		if lowP < 2 && len(cr.ProcList) > 1 {
			lowP = cr.ProcList[1]
		}
		res.Table3, err = sc.Table3(cr.Apps, lowP, cr.ProcList[len(cr.ProcList)-1], scale)
	}
	if err != nil {
		return nil, err
	}
	if cr.KeepGoing {
		if fails := sc.Failures(); len(fails) > 0 {
			m := NewFailureManifest(fails)
			res.Failures = m.Failures
			return res, fmt.Errorf("core: %d experiment(s) lost: %w", m.Count, ErrFailures)
		}
	}
	return res, nil
}
