package core

import (
	"fmt"
	"io"
	"text/tabwriter"

	"splash2/internal/mach"
	"splash2/internal/runner"
)

// TrafficPoint is one program's traffic breakdown at one processor count
// and cache configuration (paper Figures 4–6), normalized to bytes per
// FLOP for the floating-point codes and bytes per instruction otherwise.
type TrafficPoint struct {
	App       string
	Procs     int
	CacheSize int
	PerFlop   bool

	// Normalized bytes per FLOP (or instruction), by category.
	RemoteShared    float64
	RemoteCold      float64
	RemoteCapacity  float64
	RemoteWriteback float64
	RemoteOverhead  float64
	LocalData       float64
	TrueSharing     float64

	// Failed is the FAILED(...) placeholder for a lost run (keep-going).
	Failed string `json:"failed,omitempty"`
}

// Remote returns total normalized internode traffic.
func (t TrafficPoint) Remote() float64 {
	return t.RemoteShared + t.RemoteCold + t.RemoteCapacity + t.RemoteWriteback + t.RemoteOverhead
}

// Total returns total normalized traffic including local data.
func (t TrafficPoint) Total() float64 { return t.Remote() + t.LocalData }

// Traffic measures the breakdown for one program over processor counts at
// a given cache size (1 MB for Figure 4, 64 KB for Figure 6, two problem
// sizes for Figure 5).
func Traffic(app string, procList []int, cacheSize int, scale Scale, over map[string]int) ([]TrafficPoint, error) {
	return serialEngine().Traffic(app, procList, cacheSize, scale, over)
}

// Traffic schedules one full-memory run per processor count. Runs are
// keyed by configuration, so Table 3 and Figure 5 reuse Figure 4's
// executions within an engine.
func (e *Engine) Traffic(app string, procList []int, cacheSize int, scale Scale, over map[string]int) ([]TrafficPoint, error) {
	g := e.newGraph()
	jobs := e.trafficJobs(g, app, procList, cacheSize, scale, over)
	if err := g.Wait(e.ctx); err != nil {
		return nil, err
	}
	return e.trafficPoints(app, procList, cacheSize, jobs)
}

// trafficJobs submits the per-processor-count runs behind Traffic.
func (e *Engine) trafficJobs(g *runner.Graph, app string, procList []int, cacheSize int, scale Scale, over map[string]int) []runner.Job[*RunResult] {
	jobs := make([]runner.Job[*RunResult], len(procList))
	for i, p := range procList {
		cfg := mach.Config{Procs: p, CacheSize: cacheSize, Assoc: 4, LineSize: 64}
		jobs[i] = e.runJob(g, app, cfg, merged(scale, app, over))
	}
	return jobs
}

// trafficPoints normalizes completed runs into Figure-4 breakdowns.
func (e *Engine) trafficPoints(app string, procList []int, cacheSize int, jobs []runner.Job[*RunResult]) ([]TrafficPoint, error) {
	var out []TrafficPoint
	perFlop := flopBased(app)
	for i, p := range procList {
		res, failed, err := degrade(e, jobs[i])
		if err != nil {
			return nil, err
		}
		if failed != "" {
			out = append(out, TrafficPoint{App: app, Procs: p, CacheSize: cacheSize, PerFlop: perFlop, Failed: failed})
			continue
		}
		agg := mach.Aggregate(res.Stats.Procs)
		denom := float64(agg.Flops)
		if !perFlop {
			denom = float64(agg.Instr)
		}
		if denom == 0 {
			denom = 1
		}
		tr := res.Stats.Mem.Traffic
		out = append(out, TrafficPoint{
			App: app, Procs: p, CacheSize: cacheSize, PerFlop: perFlop,
			RemoteShared:    float64(tr.RemoteShared) / denom,
			RemoteCold:      float64(tr.RemoteCold) / denom,
			RemoteCapacity:  float64(tr.RemoteCapacity) / denom,
			RemoteWriteback: float64(tr.RemoteWriteback) / denom,
			RemoteOverhead:  float64(tr.RemoteOverhead) / denom,
			LocalData:       float64(tr.LocalData) / denom,
			TrueSharing:     float64(tr.TrueSharingData) / denom,
		})
	}
	return out, nil
}

// TrafficSuite measures Figure 4 (or Figure 6) for several programs.
func TrafficSuite(appNames []string, procList []int, cacheSize int, scale Scale) ([][]TrafficPoint, error) {
	return serialEngine().TrafficSuite(appNames, procList, cacheSize, scale)
}

// TrafficSuite schedules the whole program × processor-count grid as one
// graph so every point runs concurrently.
func (e *Engine) TrafficSuite(appNames []string, procList []int, cacheSize int, scale Scale) ([][]TrafficPoint, error) {
	g := e.newGraph()
	jobs := make([][]runner.Job[*RunResult], len(appNames))
	for i, name := range appNames {
		jobs[i] = e.trafficJobs(g, name, procList, cacheSize, scale, nil)
	}
	if err := g.Wait(e.ctx); err != nil {
		return nil, err
	}
	var out [][]TrafficPoint
	for i, name := range appNames {
		pts, err := e.trafficPoints(name, procList, cacheSize, jobs[i])
		if err != nil {
			return nil, err
		}
		out = append(out, pts)
	}
	return out, nil
}

// RenderTraffic prints breakdowns, one row per (app, procs).
func RenderTraffic(w io.Writer, groups [][]TrafficPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Code\tP\tUnit\tRem.Shared\tRem.Cold\tRem.Cap\tRem.WB\tRem.Ovhd\tLocal\tTrueShare\tTotal")
	for _, pts := range groups {
		for _, t := range pts {
			if t.Failed != "" {
				fmt.Fprintf(tw, "%s\t%d\t%s\n", t.App, t.Procs, t.Failed)
				continue
			}
			unit := "B/instr"
			if t.PerFlop {
				unit = "B/FLOP"
			}
			fmt.Fprintf(tw, "%s\t%d\t%s\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
				t.App, t.Procs, unit, t.RemoteShared, t.RemoteCold, t.RemoteCapacity,
				t.RemoteWriteback, t.RemoteOverhead, t.LocalData, t.TrueSharing, t.Total())
		}
	}
	tw.Flush()
}

// Table3Row gives the communication-to-computation growth of one program:
// the paper's analytic form plus this run's measured ratio of true-sharing
// traffic per unit computation at two processor counts.
type Table3Row struct {
	App          string
	AnalyticForm string
	LowProcs     int
	HighProcs    int
	RatioLow     float64 // true sharing bytes per flop/instr
	RatioHigh    float64
	MeasuredGrow float64 // RatioHigh / RatioLow

	// Failed is the FAILED(...) placeholder when either measurement was
	// lost (keep-going).
	Failed string `json:"failed,omitempty"`
}

// table3Forms is the paper's Table 3 (analytic comm/comp growth rates).
var table3Forms = map[string]string{
	"barnes":    "≈ √P·log(DS) / DS (input dependent)",
	"cholesky":  "≈ √P / √DS (structure dependent)",
	"fft":       "(P−1)/P — all-to-all transpose",
	"fmm":       "≈ √P / √DS",
	"lu":        "√P / √DS",
	"ocean":     "√P / √DS",
	"radiosity": "unpredictable",
	"radix":     "(P−1)/P — all-to-all permutation",
	"raytrace":  "unpredictable",
	"volrend":   "unpredictable",
	"water-nsq": "≈ (P−1)/P (all molecules read)",
	"water-sp":  "≈ (P/DS)^(2/3)",
}

// Table3 measures comm/comp at two processor counts and reports growth.
func Table3(appNames []string, lowP, highP int, scale Scale) ([]Table3Row, error) {
	return serialEngine().Table3(appNames, lowP, highP, scale)
}

// Table3 schedules the two-point traffic measurements for every
// program; the runs hash identically to Figure 4's at the same counts,
// so within an engine they are free.
func (e *Engine) Table3(appNames []string, lowP, highP int, scale Scale) ([]Table3Row, error) {
	groups, err := e.TrafficSuite(appNames, []int{lowP, highP}, 1<<20, scale)
	if err != nil {
		return nil, err
	}
	var out []Table3Row
	for i, name := range appNames {
		pts := groups[i]
		row := Table3Row{
			App: name, AnalyticForm: table3Forms[name],
			LowProcs: lowP, HighProcs: highP,
		}
		if failed := pts[0].Failed + pts[1].Failed; failed != "" {
			row.Failed = firstNonEmpty(pts[0].Failed, pts[1].Failed)
			out = append(out, row)
			continue
		}
		row.RatioLow, row.RatioHigh = pts[0].TrueSharing, pts[1].TrueSharing
		if row.RatioLow > 0 {
			row.MeasuredGrow = row.RatioHigh / row.RatioLow
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderTable3 prints Table 3.
func RenderTable3(w io.Writer, rows []Table3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Code\tGrowth of comm/comp (paper)\tmeasured @P1\tmeasured @P2\tgrowth")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(tw, "%s\t%s\t%s\n", r.App, r.AnalyticForm, r.Failed)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%.5f (P=%d)\t%.5f (P=%d)\t×%.2f\n",
			r.App, r.AnalyticForm, r.RatioLow, r.LowProcs, r.RatioHigh, r.HighProcs, r.MeasuredGrow)
	}
	tw.Flush()
}

// firstNonEmpty returns the first non-empty string.
func firstNonEmpty(ss ...string) string {
	for _, s := range ss {
		if s != "" {
			return s
		}
	}
	return ""
}
