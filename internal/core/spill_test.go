package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"splash2/internal/fault"
)

// spillGlob lists the spilled v2 containers under an engine cache dir.
func spillGlob(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "traces", "*.sp2t"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// TestSpillTracesMatchInMemory is the spilling equivalence invariant: a
// characterization whose record jobs stream to on-disk v2 containers and
// replay out of core must be deep-equal to the all-in-memory run, and
// the containers must actually exist on disk.
func TestSpillTracesMatchInMemory(t *testing.T) {
	o := engineTestOptions()
	base, err := CollectResults(o)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	e, err := NewEngine(EngineOptions{Workers: 4, CacheDir: dir, SpillTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.CollectResults(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatalf("spilled results diverge from in-memory:\n got %+v\nwant %+v", res, base)
	}
	if len(spillGlob(t, dir)) == 0 {
		t.Fatal("no spilled containers written; the run tested nothing")
	}
}

// TestSpillReuseAndCorruptionFallback: a later engine over the same
// cache directory reuses a verified spilled container instead of
// re-recording (same inode, untouched bytes), while a corrupted
// container reads as a miss — silently re-recorded, never an error —
// and both still produce the baseline results.
func TestSpillReuseAndCorruptionFallback(t *testing.T) {
	o := engineTestOptions()
	base, err := CollectResults(o)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	first, err := NewEngine(EngineOptions{Workers: 4, CacheDir: dir, SpillTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.CollectResults(o); err != nil {
		t.Fatal(err)
	}
	containers := spillGlob(t, dir)
	if len(containers) == 0 {
		t.Fatal("no spilled containers written")
	}
	stamp := func() map[string]int64 {
		m := map[string]int64{}
		for _, p := range containers {
			fi, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			m[p] = fi.ModTime().UnixNano()
		}
		return m
	}
	before := stamp()

	// Drop only the result cache (its two-character shard directories),
	// keeping the traces/ containers: the re-run must demand the record
	// jobs again and serve them from disk (writeSpilled goes through
	// tmp+rename, so a rewrite would change the mtime).
	dropResultCache := func() {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range ents {
			if ent.Name() == "traces" {
				continue
			}
			if err := os.RemoveAll(filepath.Join(dir, ent.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	dropResultCache()
	second, err := NewEngine(EngineOptions{Workers: 4, CacheDir: dir, SpillTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := second.CollectResults(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatal("results served from spilled containers diverge from baseline")
	}
	if after := stamp(); !reflect.DeepEqual(before, after) {
		t.Fatalf("containers were rewritten on reuse:\nbefore %v\nafter  %v", before, after)
	}

	// Corrupt every container (hash mismatch against the sidecar): the
	// loader must fall back to re-recording and overwrite them.
	for _, p := range containers {
		if err := os.WriteFile(p, []byte("garbage, not a v2 container"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	dropResultCache()
	third, err := NewEngine(EngineOptions{Workers: 4, CacheDir: dir, SpillTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err = third.CollectResults(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, res) {
		t.Fatal("results after container corruption diverge from baseline")
	}
}

// TestChaosSpilledTraceFaults drives spilled characterizations through
// faults on the trace-read points ("trace.read", "trace.read.footer",
// "trace.read.block:<i>"). Open- and footer-level faults strike inside
// loadSpilled, which must degrade to re-recording — zero failures.
// Block-level faults strike mid-replay inside sweep jobs, so keep-going
// loses those experiments; either way every surviving row must be
// byte-identical to the fault-free run.
func TestChaosSpilledTraceFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs full characterizations")
	}
	clean := survivorIndex(t, chaosClean(t))
	cases := []struct {
		name string
		rule fault.Rule
		// recoverable faults degrade to re-recording: no failures allowed.
		recoverable bool
	}{
		{name: "open-error", recoverable: true,
			rule: fault.Rule{Pattern: "trace.read", Action: fault.Error}},
		{name: "footer-error", recoverable: true,
			rule: fault.Rule{Pattern: "trace.read.footer", Action: fault.Error}},
		{name: "footer-shortread", recoverable: true,
			rule: fault.Rule{Pattern: "trace.read.footer", Action: fault.ShortRead, Keep: 3}},
		{name: "block-error",
			rule: fault.Rule{Pattern: "trace.read.block:*", Action: fault.Error, Nth: -40}},
		{name: "block-shortread",
			rule: fault.Rule{Pattern: "trace.read.block:*", Action: fault.ShortRead, Nth: -40, Keep: 2}},
	}
	for _, tc := range cases {
		for _, seed := range chaosSeeds(t) {
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				inj := fault.New(seed, tc.rule)
				e, err := NewEngine(EngineOptions{
					Workers:     4,
					CacheDir:    t.TempDir(),
					SpillTraces: true,
					KeepGoing:   true,
					Fault:       inj,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := e.CollectResults(engineTestOptions())
				if tc.recoverable {
					if err != nil {
						t.Fatalf("recoverable trace fault surfaced as an error: %v", err)
					}
					if len(res.Failures) != 0 {
						t.Fatalf("recoverable trace fault lost experiments: %+v", res.Failures)
					}
				} else if err != nil && !errors.Is(err, ErrFailures) {
					t.Fatalf("keep-going run returned a hard error: %v", err)
				}
				if len(inj.Fired()) == 0 {
					t.Fatal("no fault fired; the case tested nothing")
				}
				for key, b := range survivorIndex(t, res) {
					want, ok := clean[key]
					if !ok {
						t.Errorf("survivor %s does not exist in the clean run", key)
						continue
					}
					if string(b) != string(want) {
						t.Errorf("survivor %s diverges from the clean run:\n got %s\nwant %s", key, b, want)
					}
				}
			})
		}
	}
}
