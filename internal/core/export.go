package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Export encoders: the paper shipped an online database of
// characterization results behind an interactive graphing tool; these
// CSV/JSON exporters are the equivalent machine-readable surface for the
// regenerated results.

// Results bundles one full characterization for export.
type Results struct {
	Procs       int               `json:"procs"`
	Table1      []Table1Row       `json:"table1,omitempty"`
	Speedups    []SpeedupCurve    `json:"speedups,omitempty"`
	Sync        []SyncProfile     `json:"sync,omitempty"`
	MissCurves  []MissCurve       `json:"missCurves,omitempty"`
	Sampled     []SampledCurve    `json:"sampled,omitempty"`
	Table2      []Table2Row       `json:"table2,omitempty"`
	Traffic     [][]TrafficPoint  `json:"traffic,omitempty"`
	Table3      []Table3Row       `json:"table3,omitempty"`
	LineSize    [][]LineSizePoint `json:"lineSize,omitempty"`
	PruneAdvice []PruneAdvice     `json:"pruneAdvice,omitempty"`

	// Failures is the failure manifest of a keep-going run that lost
	// experiments; empty on a clean run.
	Failures []FailureRecord `json:"failures,omitempty"`
}

// CollectResults runs the full characterization and returns the raw data
// (the machine-readable twin of Report).
func CollectResults(o ReportOptions) (*Results, error) {
	e, err := NewEngine(o.engineOptions())
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.CollectResults(o)
}

// CollectResults is the engine form of the package-level CollectResults.
func (e *Engine) CollectResults(o ReportOptions) (*Results, error) {
	o = o.WithDefaults()
	res := &Results{Procs: o.Procs}
	var err error
	if res.Table1, err = e.Table1(o.Apps, o.Procs, o.Scale); err != nil {
		return nil, err
	}
	if res.Speedups, err = e.Speedups(o.Apps, o.ProcList, o.Scale); err != nil {
		return nil, err
	}
	if res.Sync, err = e.SyncProfiles(o.Apps, o.Procs, o.Scale); err != nil {
		return nil, err
	}
	if res.MissCurves, err = e.WorkingSets(o.Apps, o.Procs, o.CacheSizes, []int{4}, o.Scale); err != nil {
		return nil, err
	}
	if o.SampleRate > 0 {
		seed := o.SampleSeed
		if seed == 0 {
			seed = 1
		}
		if res.Sampled, err = e.WorkingSetsSampled(o.Apps, o.Procs, o.CacheSizes, o.SampleRate, seed, o.Scale); err != nil {
			return nil, err
		}
	}
	res.Table2 = Table2(res.MissCurves)
	for _, c := range res.MissCurves {
		if c.Failed != "" {
			continue
		}
		res.PruneAdvice = append(res.PruneAdvice, Prune(c))
	}
	if res.Traffic, err = e.TrafficSuite(o.Apps, o.ProcList, 1<<20, o.Scale); err != nil {
		return nil, err
	}
	lowP := o.ProcList[0]
	if lowP < 2 && len(o.ProcList) > 1 {
		lowP = o.ProcList[1]
	}
	if res.Table3, err = e.Table3(o.Apps, lowP, o.ProcList[len(o.ProcList)-1], o.Scale); err != nil {
		return nil, err
	}
	if res.LineSize, err = e.LineSizeSuite(o.Apps, o.Procs, 1<<20, o.LineSizes, o.Scale); err != nil {
		return nil, err
	}
	if e.keepGoing {
		if fails := e.Failures(); len(fails) > 0 {
			m := NewFailureManifest(fails)
			res.Failures = m.Failures
			// The results are still returned: callers export the partial
			// data and use errors.Is(err, ErrFailures) for the exit status.
			return res, fmt.Errorf("core: %d experiment(s) lost: %w", m.Count, ErrFailures)
		}
	}
	return res, nil
}

// WriteJSON emits the results as indented JSON.
func (r *Results) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits the results as sectioned CSV: each section starts with a
// `#section <name>` line followed by a header row and data rows.
func (r *Results) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	section := func(name string, header []string) error {
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "#section %s\n", name); err != nil {
			return err
		}
		return cw.Write(header)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	d := func(v int) string { return strconv.Itoa(v) }

	if err := section("table1", []string{"app", "instr", "flops", "reads", "writes", "sharedReads", "sharedWrites", "barriersPerProc", "locks", "pauses"}); err != nil {
		return err
	}
	for _, t := range r.Table1 {
		if t.Failed != "" {
			continue
		}
		if err := cw.Write([]string{t.App, u(t.Instr), u(t.Flops), u(t.Reads), u(t.Writes), u(t.SharedReads), u(t.SharedWrites), u(t.BarriersPerProc), u(t.Locks), u(t.Pauses)}); err != nil {
			return err
		}
	}

	if err := section("speedups", []string{"app", "procs", "speedup"}); err != nil {
		return err
	}
	for _, c := range r.Speedups {
		if c.Failed != "" {
			continue
		}
		for i, p := range c.Procs {
			if err := cw.Write([]string{c.App, d(p), f(c.Speedup[i])}); err != nil {
				return err
			}
		}
	}

	if err := section("sync", []string{"app", "minPct", "avgPct", "maxPct"}); err != nil {
		return err
	}
	for _, s := range r.Sync {
		if s.Failed != "" {
			continue
		}
		if err := cw.Write([]string{s.App, f(s.MinPct), f(s.AvgPct), f(s.MaxPct)}); err != nil {
			return err
		}
	}

	if err := section("missCurves", []string{"app", "assoc", "cacheSize", "missRatePct"}); err != nil {
		return err
	}
	for _, c := range r.MissCurves {
		if c.Failed != "" {
			continue
		}
		for i, cs := range c.CacheSizes {
			if err := cw.Write([]string{c.App, d(c.Assoc), d(cs), f(c.MissRate[i])}); err != nil {
				return err
			}
		}
	}

	if len(r.Sampled) > 0 {
		if err := section("sampled", []string{"app", "cacheSize", "rate", "effRate", "seed", "exactLines", "missRatePct", "bandLoPct", "bandHiPct"}); err != nil {
			return err
		}
		for _, c := range r.Sampled {
			if c.Failed != "" {
				continue
			}
			for i, cs := range c.CacheSizes {
				if err := cw.Write([]string{c.App, d(cs), f(c.Rate), f(c.EffRate), u(c.SampleSeed), d(c.ExactLines), f(c.MissRate[i]), f(c.BandLo[i]), f(c.BandHi[i])}); err != nil {
					return err
				}
			}
		}
	}

	if err := section("traffic", []string{"app", "procs", "perFlop", "remoteShared", "remoteCold", "remoteCapacity", "remoteWriteback", "remoteOverhead", "localData", "trueSharing"}); err != nil {
		return err
	}
	for _, pts := range r.Traffic {
		for _, t := range pts {
			if t.Failed != "" {
				continue
			}
			if err := cw.Write([]string{t.App, d(t.Procs), strconv.FormatBool(t.PerFlop), f(t.RemoteShared), f(t.RemoteCold), f(t.RemoteCapacity), f(t.RemoteWriteback), f(t.RemoteOverhead), f(t.LocalData), f(t.TrueSharing)}); err != nil {
				return err
			}
		}
	}

	if err := section("lineSize", []string{"app", "lineSize", "coldPct", "capacityPct", "truePct", "falsePct", "upgradePct", "remoteData", "remoteOverhead", "localData"}); err != nil {
		return err
	}
	for _, pts := range r.LineSize {
		for _, l := range pts {
			if l.Failed != "" {
				continue
			}
			if err := cw.Write([]string{l.App, d(l.LineSize), f(l.ColdPct), f(l.CapacityPct), f(l.TruePct), f(l.FalsePct), f(l.UpgradePct), f(l.RemoteData), f(l.RemoteOverhead), f(l.LocalData)}); err != nil {
				return err
			}
		}
	}

	if len(r.Failures) > 0 {
		if err := section("failures", []string{"label", "key", "attempts", "panicked", "timedOut", "skipped", "cause"}); err != nil {
			return err
		}
		for _, rec := range r.Failures {
			if err := cw.Write([]string{rec.Label, rec.Key, d(rec.Attempts), strconv.FormatBool(rec.Panicked), strconv.FormatBool(rec.TimedOut), strconv.FormatBool(rec.Skipped), rec.Cause}); err != nil {
				return err
			}
		}
	}

	cw.Flush()
	return cw.Error()
}
