package core

import (
	"fmt"
	"io"
	"text/tabwriter"

	"splash2/internal/mach"
	"splash2/internal/runner"
)

// SpeedupCurve is one program's PRAM speedup over processor counts
// (paper Figure 1): T(1)/T(p) under a perfect memory system, so deviations
// from ideal measure load imbalance, serialization and redundant work.
type SpeedupCurve struct {
	App     string
	Procs   []int
	Speedup []float64
	Time    []uint64

	// Failed marks the whole curve lost in a keep-going run. A partial
	// curve would be misleading (every point is normalized to the
	// baseline), so one lost point fails the curve.
	Failed string `json:"failed,omitempty"`
}

// Speedups measures PRAM speedups for each program over procList.
func Speedups(appNames []string, procList []int, scale Scale) ([]SpeedupCurve, error) {
	return serialEngine().Speedups(appNames, procList, scale)
}

// Speedups schedules the program × processor-count grid as independent
// jobs; curves are assembled in procList order once the graph completes.
func (e *Engine) Speedups(appNames []string, procList []int, scale Scale) ([]SpeedupCurve, error) {
	g := e.newGraph()
	jobs := make([][]runner.Job[*RunResult], len(appNames))
	for ai, name := range appNames {
		jobs[ai] = make([]runner.Job[*RunResult], len(procList))
		for pi, p := range procList {
			jobs[ai][pi] = e.runJob(g, name, mach.Config{Procs: p, MemModel: mach.CountOnly}, scale.Overrides(name))
		}
	}
	if err := g.Wait(e.ctx); err != nil {
		return nil, err
	}
	var out []SpeedupCurve
	for ai, name := range appNames {
		curve := SpeedupCurve{App: name, Procs: procList}
		var t1 float64
		for i, p := range procList {
			res, failed, err := degrade(e, jobs[ai][i])
			if err != nil {
				return nil, err
			}
			if failed != "" {
				curve = SpeedupCurve{App: name, Procs: procList, Failed: failed}
				break
			}
			t := res.Stats.Time
			curve.Time = append(curve.Time, t)
			if i == 0 {
				// Baseline: the first point (normally p=1); if the sweep
				// starts above 1, assume ideal scaling up to it.
				t1 = float64(t) * float64(p)
			}
			curve.Speedup = append(curve.Speedup, t1/float64(t))
		}
		out = append(out, curve)
	}
	return out, nil
}

// RenderSpeedups prints the curves as a table, one column per proc count.
func RenderSpeedups(w io.Writer, curves []SpeedupCurve) {
	if len(curves) == 0 {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Code")
	for _, p := range curves[0].Procs {
		fmt.Fprintf(tw, "\tP=%d", p)
	}
	fmt.Fprintln(tw)
	for _, c := range curves {
		fmt.Fprint(tw, c.App)
		if c.Failed != "" {
			fmt.Fprintf(tw, "\t%s\n", c.Failed)
			continue
		}
		for _, s := range c.Speedup {
			fmt.Fprintf(tw, "\t%.2f", s)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// SyncProfile is one program's synchronization time distribution at a
// fixed processor count (paper Figure 2): the minimum, average and maximum
// fraction of execution time spent at synchronization points (locks,
// barriers and pauses) over all processors.
type SyncProfile struct {
	App           string
	MinPct        float64
	AvgPct        float64
	MaxPct        float64
	BarriersTotal uint64
	LocksTotal    uint64
	PausesTotal   uint64

	// Failed is the FAILED(...) placeholder for a lost run (keep-going).
	Failed string `json:"failed,omitempty"`
}

// SyncProfiles measures Figure 2 for every program.
func SyncProfiles(appNames []string, procs int, scale Scale) ([]SyncProfile, error) {
	return serialEngine().SyncProfiles(appNames, procs, scale)
}

// SyncProfiles schedules one count-only run per program. These jobs hash
// identically to Table 1's at the same processor count, so within an
// engine each program executes once for both.
func (e *Engine) SyncProfiles(appNames []string, procs int, scale Scale) ([]SyncProfile, error) {
	g := e.newGraph()
	jobs := make([]runner.Job[*RunResult], len(appNames))
	for i, name := range appNames {
		jobs[i] = e.runJob(g, name, mach.Config{Procs: procs, MemModel: mach.CountOnly}, scale.Overrides(name))
	}
	if err := g.Wait(e.ctx); err != nil {
		return nil, err
	}
	var out []SyncProfile
	for i, name := range appNames {
		res, failed, err := degrade(e, jobs[i])
		if err != nil {
			return nil, err
		}
		if failed != "" {
			out = append(out, SyncProfile{App: name, Failed: failed})
			continue
		}
		t := float64(res.Stats.Time)
		pr := SyncProfile{App: name, MinPct: 101}
		var sum float64
		for _, c := range res.Stats.Procs {
			pct := 0.0
			if t > 0 {
				pct = 100 * float64(c.SyncWait) / t
			}
			sum += pct
			if pct < pr.MinPct {
				pr.MinPct = pct
			}
			if pct > pr.MaxPct {
				pr.MaxPct = pct
			}
			pr.BarriersTotal += c.Barriers
			pr.LocksTotal += c.Locks
			pr.PausesTotal += c.Pauses
		}
		pr.AvgPct = sum / float64(len(res.Stats.Procs))
		out = append(out, pr)
	}
	return out, nil
}

// RenderSyncProfiles prints the Figure-2 table.
func RenderSyncProfiles(w io.Writer, profiles []SyncProfile) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Code\tMin %\tAvg %\tMax %\tBarriers\tLocks\tPauses")
	for _, p := range profiles {
		if p.Failed != "" {
			fmt.Fprintf(tw, "%s\t%s\n", p.App, p.Failed)
			continue
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%d\t%d\t%d\n",
			p.App, p.MinPct, p.AvgPct, p.MaxPct, p.BarriersTotal, p.LocksTotal, p.PausesTotal)
	}
	tw.Flush()
}
