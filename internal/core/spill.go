package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"splash2/internal/mach"
	"splash2/internal/memsys"
	"splash2/internal/runner"
)

// Trace spilling: with EngineOptions.SpillTraces, a record job streams
// the recorded reference stream into an on-disk columnar v2 container
// and hands its consumers an out-of-core memsys.TraceFile instead of
// the in-memory event array. Replay jobs (Figure 3, Figure 7–8,
// replayrun) consume TraceSource and stream block by block, so the
// engine's peak memory for a sweep drops from O(trace) to O(block
// buffer) — the difference between running paper-scale inputs on a
// small box or not at all.
//
// Spilled containers are content-addressed by the trace identity (the
// same key space as every derived replay, SuiteVersion included), so a
// later process reuses a spilled trace the way it reuses cached replay
// results. Because a few programs are scheduler-dependent, a reused
// file must be *verified*, not trusted: a sidecar JSON carries the
// recording run's counters plus the container's SHA-256, and a reader
// that finds a mismatched hash (concurrent writer, torn update,
// corruption) re-records instead of replaying the wrong bytes.

// spillOrphanAge guards the open-time orphan sweep: writeSpilled renames
// the container before the sidecar, so a live concurrent writer presents
// an unpaired container for a moment. Only pairs broken for longer than
// this are crash debris. An explicit resume sweeps with age 0 — the dead
// process is known dead.
const spillOrphanAge = time.Hour

// sweepSpillOrphans removes the halves of broken container/sidecar pairs
// older than age from a spill directory: a container without a sidecar
// can never be verified and will never be read; a sidecar without its
// container describes nothing. loadSpilled already treats both as
// misses, so the sweep reclaims disk, not correctness. Returns the
// removed paths; best-effort on I/O errors.
func sweepSpillOrphans(dir string, age time.Duration) (removed []string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	present := make(map[string]bool, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			present[e.Name()] = true
		}
	}
	now := time.Now() //splash:allow determinism sweep age check; file janitor, never reaches results
	oldEnough := func(name string) bool {
		info, err := os.Stat(filepath.Join(dir, name))
		return err == nil && now.Sub(info.ModTime()) > age
	}
	for _, e := range entries { // ReadDir order: sorted, deterministic
		name := e.Name()
		var partner string
		switch {
		case strings.HasSuffix(name, ".sp2t.json"):
			partner = strings.TrimSuffix(name, ".json")
		case strings.HasSuffix(name, ".sp2t"):
			partner = name + ".json"
		default:
			continue // temp files and strangers are sweepTmp's business
		}
		if present[partner] || !oldEnough(name) {
			continue
		}
		path := filepath.Join(dir, name)
		if os.Remove(path) == nil {
			removed = append(removed, path)
		}
	}
	return removed
}

// spillSidecar is the JSON sidecar of one spilled trace container.
type spillSidecar struct {
	// TraceSum is the hex SHA-256 of the container file.
	TraceSum string `json:"traceSum"`
	// Stats are the recording run's counters (the recordstats source).
	Stats mach.Stats `json:"stats"`
}

// spillPaths returns the container and sidecar paths for a trace key.
func (e *Engine) spillPaths(key string) (trace, sidecar string) {
	base := filepath.Join(e.spillDir, key)
	return base + ".sp2t", base + ".sp2t.json"
}

// recordSpillJob schedules one trace recording that spills to disk
// (kind "recordv2"). Like recordJob it is lazy and never enters the
// result cache itself — the container on disk *is* the cached artifact.
func (e *Engine) recordSpillJob(g *runner.Graph, id traceIdent) runner.Job[recordOut] {
	key := runner.KeyOf("recordv2", id)
	name := key.String()
	return runner.Submit(g, runner.Spec{
		Label:   fmt.Sprintf("recordv2 %s p=%d", id.App, id.Procs),
		Key:     key,
		Lazy:    true,
		NoStore: true,
	}, func(ctx context.Context) (recordOut, error) {
		if out, ok := e.loadSpilled(name); ok {
			return out, nil
		}
		tr, st, err := RecordApp(id.App, id.Procs, id.Opts)
		if err != nil {
			return recordOut{}, err
		}
		if err := e.writeSpilled(name, tr, st); err != nil {
			return recordOut{}, err
		}
		out, ok := e.loadSpilled(name)
		if !ok {
			// A concurrent writer of a scheduler-dependent app replaced the
			// pair between our renames; fall back to the trace in hand.
			return recordOut{Trace: tr, Stats: st}, nil
		}
		return out, nil
	})
}

// loadSpilled opens a previously spilled container after verifying its
// sidecar hash. Any inconsistency — missing files, corrupt JSON, hash
// mismatch, unreadable container — reads as a miss, never an error:
// spilling must degrade to re-recording.
func (e *Engine) loadSpilled(key string) (recordOut, bool) {
	tracePath, sidecarPath := e.spillPaths(key)
	raw, err := os.ReadFile(sidecarPath)
	if err != nil {
		return recordOut{}, false
	}
	var sc spillSidecar
	if err := json.Unmarshal(raw, &sc); err != nil {
		return recordOut{}, false
	}
	f, err := os.Open(tracePath)
	if err != nil {
		return recordOut{}, false
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		f.Close()
		return recordOut{}, false
	}
	f.Close()
	if hex.EncodeToString(h.Sum(nil)) != sc.TraceSum {
		return recordOut{}, false
	}
	tf, err := memsys.OpenTraceFile(tracePath, e.fault)
	if err != nil {
		return recordOut{}, false
	}
	return recordOut{Trace: tf, Stats: sc.Stats}, true
}

// writeSpilled streams the trace into a v2 container plus sidecar,
// atomically (tmp + rename, container first so a sidecar never
// describes a missing file).
func (e *Engine) writeSpilled(key string, tr *memsys.Trace, st mach.Stats) error {
	tracePath, sidecarPath := e.spillPaths(key)
	f, err := os.CreateTemp(e.spillDir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("core: spilling trace: %w", err)
	}
	h := sha256.New()
	_, werr := tr.WriteV2(io.MultiWriter(f, h))
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(f.Name(), tracePath)
	}
	if werr != nil {
		os.Remove(f.Name())
		return fmt.Errorf("core: spilling trace: %w", werr)
	}
	raw, err := json.Marshal(spillSidecar{TraceSum: hex.EncodeToString(h.Sum(nil)), Stats: st})
	if err != nil {
		return fmt.Errorf("core: spilling trace sidecar: %w", err)
	}
	sf, err := os.CreateTemp(e.spillDir, key+".json.tmp*")
	if err != nil {
		return fmt.Errorf("core: spilling trace sidecar: %w", err)
	}
	_, werr = sf.Write(raw)
	cerr = sf.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(sf.Name(), sidecarPath)
	}
	if werr != nil {
		os.Remove(sf.Name())
		return fmt.Errorf("core: spilling trace sidecar: %w", werr)
	}
	return nil
}
