package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"splash2/internal/fault"
)

// The chaos suite drives full characterizations through the
// deterministic fault injector and checks the fault-tolerance
// invariant: injected faults may lose individual experiments, but they
// never change the numeric results of the experiments that survive, and
// the failure manifest accounts for exactly the jobs that were hit.

// chaosSeeds returns the injection seeds: the CHAOS_SEED environment
// variable (comma-separated) when set — the CI chaos matrix sets one
// seed per job — else {1, 2, 3}.
func chaosSeeds(t *testing.T) []int64 {
	env := os.Getenv("CHAOS_SEED")
	if env == "" {
		return []int64{1, 2, 3}
	}
	var out []int64
	for _, s := range strings.Split(env, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		out = append(out, n)
	}
	return out
}

// chaosBaseline caches the fault-free reference characterization; every
// chaos run compares its survivors against it.
var chaosBaseline struct {
	once sync.Once
	res  *Results
	err  error
}

func chaosClean(t *testing.T) *Results {
	t.Helper()
	chaosBaseline.once.Do(func() {
		e, err := NewEngine(EngineOptions{Workers: 4})
		if err != nil {
			chaosBaseline.err = err
			return
		}
		chaosBaseline.res, chaosBaseline.err = e.CollectResults(engineTestOptions())
	})
	if chaosBaseline.err != nil {
		t.Fatalf("clean baseline run failed: %v", chaosBaseline.err)
	}
	return chaosBaseline.res
}

// survivorIndex maps every non-failed row of a characterization to its
// JSON encoding, keyed by the row's identity. Byte-equal encodings mean
// byte-equal exported results.
func survivorIndex(t *testing.T, res *Results) map[string][]byte {
	t.Helper()
	idx := map[string][]byte{}
	add := func(key string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if _, dup := idx[key]; dup {
			t.Fatalf("duplicate survivor key %s", key)
		}
		idx[key] = b
	}
	for _, r := range res.Table1 {
		if r.Failed == "" {
			add("table1/"+r.App, r)
		}
	}
	for _, c := range res.Speedups {
		if c.Failed == "" {
			add("speedup/"+c.App, c)
		}
	}
	for _, s := range res.Sync {
		if s.Failed == "" {
			add("sync/"+s.App, s)
		}
	}
	for _, c := range res.MissCurves {
		if c.Failed == "" {
			add(fmt.Sprintf("miss/%s/%d", c.App, c.Assoc), c)
		}
	}
	for _, r := range res.Table2 {
		add("table2/"+r.App, r)
	}
	for _, a := range res.PruneAdvice {
		add("prune/"+a.App, a)
	}
	for _, pts := range res.Traffic {
		for _, p := range pts {
			if p.Failed == "" {
				add(fmt.Sprintf("traffic/%s/%d/%d", p.App, p.Procs, p.CacheSize), p)
			}
		}
	}
	for _, r := range res.Table3 {
		if r.Failed == "" {
			add("table3/"+r.App, r)
		}
	}
	for _, pts := range res.LineSize {
		for _, p := range pts {
			if p.Failed == "" {
				add(fmt.Sprintf("lsz/%s/%d", p.App, p.LineSize), p)
			}
		}
	}
	return idx
}

// chaosCase is one rule set of the chaos matrix.
type chaosCase struct {
	name    string
	timeout time.Duration
	rules   []fault.Rule
	// warmCache pre-populates the run's cache directory with a clean
	// characterization so cache-read faults have real entries to corrupt.
	warmCache bool
	// wantFailures asserts the rule set actually lost experiments — a
	// guard against rules that silently never fire.
	wantFailures bool
}

func chaosCases() []chaosCase {
	return []chaosCase{
		// A non-transient error on a seed-chosen job: the job fails, its
		// dependents are skipped, everything else completes.
		{name: "error", wantFailures: true, rules: []fault.Rule{
			{Pattern: "job:*", Action: fault.Error, Nth: -6},
		}},
		// An injected panic must be recovered into a structured failure,
		// never crash the process.
		{name: "panic", wantFailures: true, rules: []fault.Rule{
			{Pattern: "job:*", Action: fault.Panic, Nth: -4},
		}},
		// A wedged job (long stall against a short attempt timeout) must
		// be abandoned without hanging the pool.
		{name: "timeout", timeout: 4 * time.Second, wantFailures: true, rules: []fault.Rule{
			{Pattern: "job:run *", Action: fault.Delay, Nth: -3, Delay: time.Minute},
		}},
		// Truncated cache entries are misses: the experiments recompute
		// and nothing fails.
		{name: "shortread", warmCache: true, rules: []fault.Rule{
			{Pattern: "cache.get:*", Action: fault.ShortRead, Keep: 7},
		}},
		// All fault classes at once, against a warm cache: cache faults
		// force recomputation, job faults hit the recomputed jobs. Which
		// rules fire depends on the seed; the Fired log is ground truth.
		{name: "mixed", warmCache: true, rules: []fault.Rule{
			{Pattern: "cache.get:*", Action: fault.Error, Nth: -2},
			{Pattern: "cache.get:*", Action: fault.ShortRead, Nth: -3, Keep: 3},
			{Pattern: "job:*", Action: fault.Delay, Nth: 1, Delay: 20 * time.Millisecond},
			{Pattern: "job:*", Action: fault.Error, Nth: -2},
			{Pattern: "job:*", Action: fault.Panic, Nth: -3},
		}},
	}
}

// TestChaosKeepGoingInvariants runs every chaos rule set at every seed
// in keep-going mode and checks the three core invariants: degraded
// completion (never a hard error), survivor results byte-identical to
// the fault-free run, and a failure manifest listing exactly the
// injected jobs.
func TestChaosKeepGoingInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs full characterizations")
	}
	clean := survivorIndex(t, chaosClean(t))
	for _, tc := range chaosCases() {
		for _, seed := range chaosSeeds(t) {
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				dir := t.TempDir()
				o := engineTestOptions()
				if tc.warmCache {
					warm, err := NewEngine(EngineOptions{Workers: 4, CacheDir: dir})
					if err != nil {
						t.Fatal(err)
					}
					if _, err := warm.CollectResults(o); err != nil {
						t.Fatal(err)
					}
				}
				inj := fault.New(seed, tc.rules...)
				e, err := NewEngine(EngineOptions{
					Workers:   4,
					CacheDir:  dir,
					KeepGoing: true,
					Timeout:   tc.timeout,
					Fault:     inj,
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := e.CollectResults(o)
				checkChaosRun(t, inj, res, err, clean, tc.timeout > 0)
				if tc.wantFailures && len(res.Failures) == 0 {
					t.Fatal("rule set lost no experiments; the case tested nothing")
				}
			})
		}
	}
}

// checkChaosRun asserts the keep-going invariants on one chaos run.
func checkChaosRun(t *testing.T, inj *fault.Injector, res *Results, err error, clean map[string][]byte, timeoutSet bool) {
	t.Helper()

	// Degraded completion: the only permitted error is the ErrFailures
	// marker, and it appears exactly when experiments were lost.
	if err != nil && !errors.Is(err, ErrFailures) {
		t.Fatalf("keep-going run returned a hard error: %v", err)
	}
	if res == nil {
		t.Fatal("keep-going run returned no results")
	}
	if (len(res.Failures) > 0) != (err != nil) {
		t.Fatalf("failure marker and manifest disagree: err=%v, %d failure records", err, len(res.Failures))
	}

	// Survivors must be byte-identical to the fault-free run.
	for key, b := range survivorIndex(t, res) {
		want, ok := clean[key]
		if !ok {
			t.Errorf("survivor %s does not exist in the clean run", key)
			continue
		}
		if !bytes.Equal(b, want) {
			t.Errorf("survivor %s diverges from the clean run:\n got %s\nwant %s", key, b, want)
		}
	}

	// The manifest must list exactly the injected jobs: every directly
	// failed record corresponds to a job-level error/panic firing (or a
	// delay firing when an attempt timeout was armed), and vice versa.
	expect := map[string]bool{}
	for _, f := range inj.Fired() {
		label, ok := strings.CutPrefix(f.Op, "job:")
		if !ok {
			continue // cache/trace firings degrade to misses, not failures
		}
		switch f.Action {
		case fault.Error, fault.Panic:
			expect[label] = true
		case fault.Delay:
			if timeoutSet {
				expect[label] = true
			}
		}
	}
	got := map[string]bool{}
	for _, rec := range res.Failures {
		if rec.Skipped {
			if !strings.Contains(rec.Cause, "dependency") {
				t.Errorf("skipped record %q has cause %q, want a dependency failure", rec.Label, rec.Cause)
			}
			continue
		}
		got[rec.Label] = true
		if timeoutSet && !rec.TimedOut {
			t.Errorf("failure %q not marked timed out under a delay rule", rec.Label)
		}
	}
	for label := range expect {
		if !got[label] {
			t.Errorf("injected fault at job %q missing from the failure manifest", label)
		}
	}
	for label := range got {
		if !expect[label] {
			t.Errorf("manifest lists %q, but no fault was injected there", label)
		}
	}
}

// TestChaosTransientRetryRecovers: a transient injected error with
// retries enabled must recover completely — zero failures, results
// deep-equal to the fault-free run, and the retry visible in Counts.
func TestChaosTransientRetryRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs full characterizations")
	}
	clean := chaosClean(t)
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj := fault.New(seed, fault.Rule{
				Pattern: "job:*", Action: fault.Error, Transient: true, Nth: -8,
			})
			e, err := NewEngine(EngineOptions{
				Workers:      4,
				KeepGoing:    true,
				Retries:      3,
				RetryBackoff: time.Millisecond,
				Fault:        inj,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.CollectResults(engineTestOptions())
			if err != nil {
				t.Fatalf("transient fault was not retried away: %v", err)
			}
			if len(inj.Fired()) == 0 {
				t.Fatal("no fault fired; the case tested nothing")
			}
			c := e.Counts()
			if c.Retried == 0 {
				t.Fatalf("counts report no retries: %+v", c)
			}
			if c.Failed != 0 || c.Skipped != 0 {
				t.Fatalf("recovered run reports failures: %+v", c)
			}
			if !reflect.DeepEqual(res, clean) {
				t.Fatalf("recovered results diverge from the clean run:\n got %+v\nwant %+v", res, clean)
			}
		})
	}
}

// TestChaosFailFast: without -keep-going an injected fault must stop
// the characterization with a structured JobError, not a panic.
func TestChaosFailFast(t *testing.T) {
	inj := fault.New(1, fault.Rule{Pattern: "job:*", Action: fault.Panic, Nth: 1})
	e, err := NewEngine(EngineOptions{Workers: 4, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.CollectResults(engineTestOptions())
	if err == nil {
		t.Fatal("fail-fast run with an injected panic reported success")
	}
	if !strings.Contains(err.Error(), "injected panic") {
		t.Fatalf("error does not surface the injected panic: %v", err)
	}
}
