package core

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"splash2/internal/runner"
)

// Resume: picking up after a crash.
//
// A kill -9 mid-sweep leaves three kinds of debris in a cache directory:
// the dead run's journal (no run.end event), its work leases (mtime
// frozen at the last heartbeat), and its temp/spill artifacts. Nothing
// about the *results* needs repair — every completed experiment was
// stored atomically before its journal line — so resuming is forensics
// plus cleanup plus an ordinary re-run: the cache supplies everything
// the dead process finished, and only the in-flight remainder executes.

// ResumeReport describes what a resume pass found and reclaimed.
type ResumeReport struct {
	// DeadRuns are the crashed runs adopted by this resume: journals
	// with no run.end that no earlier resume had claimed.
	DeadRuns []runner.RunSummary `json:"deadRuns"`
	// Swept lists the lease/temp/spill files reclaimed.
	Swept []string `json:"swept,omitempty"`
}

// Resume scans cacheDir for crashed runs, marks their journals resumed,
// and sweeps their leases, temp files and broken spill pairs. leaseTTL
// must match the crashed runs' lease configuration (0 selects the
// default); leases younger than it that belong to live processes are
// left alone, so resuming next to a healthy sibling daemon is safe.
// The caller then runs its sweep normally — cache hits are the resume.
func Resume(cacheDir string, leaseTTL time.Duration) (*ResumeReport, error) {
	if cacheDir == "" {
		return nil, fmt.Errorf("core: -resume requires a cache directory")
	}
	cache, err := runner.OpenCache(cacheDir)
	if err != nil {
		return nil, err
	}
	rep := &ResumeReport{}
	for _, s := range runner.ScanJournals(runner.JournalDir(cacheDir)) {
		if s.Ended || s.Resumed {
			continue
		}
		if err := runner.MarkResumed(s.Path, fmt.Sprintf("resume pid %d", s.PID)); err != nil {
			continue // unwritable journal: report it next time too
		}
		rep.DeadRuns = append(rep.DeadRuns, s)
	}
	rep.Swept = cache.SweepCrashed(leaseTTL)
	rep.Swept = append(rep.Swept, sweepSpillOrphans(filepath.Join(cacheDir, "traces"), 0)...)
	return rep, nil
}

// Render writes the human-readable resume report.
func (r *ResumeReport) Render(w io.Writer) {
	if len(r.DeadRuns) == 0 {
		fmt.Fprintln(w, "resume: no crashed runs found")
	}
	for _, s := range r.DeadRuns {
		fmt.Fprintf(w, "resume: run %s (pid %d) died with %d done, %d failed, %d shared\n",
			s.RunID, s.PID, s.Done, s.Failed, s.Shared)
		for _, label := range s.InFlight {
			fmt.Fprintf(w, "resume:   in flight at death: %s\n", label)
		}
	}
	if n := len(r.Swept); n > 0 {
		fmt.Fprintf(w, "resume: swept %d orphaned lease/temp file(s)\n", n)
	}
}
