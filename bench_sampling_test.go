// Sampled reuse-distance benchmarks: the SHARDS-sampled estimator
// against the exact passes it replaces, on a recorded suite trace.
//
// Two comparisons matter and both are recorded in BENCH_sampling.json:
//
//   - The working-set sweep (the acceptance headline): what a cold
//     kind=workingsets job runs — a fused multi-configuration replay
//     over every default cache size — against what the cold
//     kind=working-set-sampled job runs, one sampled stack-distance
//     pass answering the same sizes. The 1% sampled sweep must be
//     ≥ 5x faster.
//   - The single fully-associative pass: exact Mattson stack
//     distances against the sampled pass on the same trace, the
//     like-for-like estimator cost.
//
// In both cases the estimated miss ratio must stay within 0.02
// absolute at every default cache size (enforced suite-wide by
// TestSampledErrorEnvelopeSuite).
package splash2_test

import (
	"math"
	"testing"

	"splash2"
)

// samplingBench holds one recorded suite trace plus the exact profile
// the estimates are judged against, built once per process.
type samplingBench struct {
	tr    *splash2.Trace
	exact *splash2.StackProfile
}

var samplingState *samplingBench

const samplingMaxCache = 1 << 20

func benchSampling(b *testing.B) *samplingBench {
	b.Helper()
	if samplingState != nil {
		return samplingState
	}
	tr, _, err := splash2.RecordTrace("fft", 8, map[string]int{"n": 4096})
	if err != nil {
		b.Fatal(err)
	}
	exact, err := splash2.StackDistances(tr, 64, samplingMaxCache)
	if err != nil {
		b.Fatal(err)
	}
	samplingState = &samplingBench{tr: tr, exact: exact}
	return samplingState
}

// BenchmarkStackDistancesExact is the pass-level baseline: the exact
// one-pass Mattson profile the sampled estimator is measured against.
func BenchmarkStackDistancesExact(b *testing.B) {
	s := benchSampling(b)
	refs := s.tr.Len()
	b.SetBytes(int64(refs) * 8)
	for i := 0; i < b.N; i++ {
		if _, err := splash2.StackDistances(s.tr, 64, samplingMaxCache); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(refs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
}

// BenchmarkSampledStackDistances measures the sampled pass at several
// rates and reports the headline accuracy metric alongside the timing:
// the worst absolute miss-ratio error across the default cache sizes.
func BenchmarkSampledStackDistances(b *testing.B) {
	s := benchSampling(b)
	refs := s.tr.Len()
	for _, rate := range []float64{0.01, 0.05, 0.3} {
		b.Run(rateName(rate), func(b *testing.B) {
			b.SetBytes(int64(refs) * 8)
			var sp *splash2.SampledProfile
			for i := 0; i < b.N; i++ {
				var err error
				sp, err = splash2.SampledStackDistances(s.tr, 64, samplingMaxCache,
					splash2.SampledOptions{Rate: rate, Seed: 1, ExactLines: splash2.DefaultExactLines})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(refs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
			maxErr := 0.0
			for cs := 1 << 10; cs <= samplingMaxCache; cs <<= 1 {
				want, err := s.exact.MissRate(cs)
				if err != nil {
					b.Fatal(err)
				}
				got, err := sp.EstMissRate(cs)
				if err != nil {
					b.Fatal(err)
				}
				if d := math.Abs(got - want); d > maxErr {
					maxErr = d
				}
			}
			b.ReportMetric(maxErr, "max-abs-err")
		})
	}
}

// sweepConfigs builds what a cold kind=workingsets job replays: one
// 4-way, 64-byte-line configuration per default cache size, all driven
// off a single fused decode.
func sweepConfigs(procs int) []splash2.MemConfig {
	sizes := splash2.DefaultCacheSizes()
	cfgs := make([]splash2.MemConfig, len(sizes))
	for i, cs := range sizes {
		cfgs[i] = splash2.MemConfig{Procs: procs, CacheSize: cs, Assoc: 4, LineSize: 64}
	}
	return cfgs
}

// BenchmarkWorkingSetSweepExact is the cold cost of the exact
// working-set sweep job: the fused multi-configuration replay a
// kind=workingsets request runs per application, answering every
// default cache size in one pass over the trace.
func BenchmarkWorkingSetSweepExact(b *testing.B) {
	s := benchSampling(b)
	cfgs := sweepConfigs(8)
	refs := s.tr.Len()
	b.SetBytes(int64(refs) * 8)
	for i := 0; i < b.N; i++ {
		stats, err := splash2.ReplayTraceMulti(s.tr, cfgs)
		if err != nil {
			b.Fatal(err)
		}
		if len(stats) != len(cfgs) {
			b.Fatalf("stats = %d, want %d", len(stats), len(cfgs))
		}
	}
	b.ReportMetric(float64(refs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
}

// BenchmarkWorkingSetSweepSampled is the cold cost of the sampled
// working-set sweep job at the production 1% rate: one sampled
// stack-distance pass, then every default cache size answered from the
// estimated histogram with its confidence band. This against
// BenchmarkWorkingSetSweepExact is the acceptance ratio in
// BENCH_sampling.json.
func BenchmarkWorkingSetSweepSampled(b *testing.B) {
	s := benchSampling(b)
	sizes := splash2.DefaultCacheSizes()
	refs := s.tr.Len()
	b.SetBytes(int64(refs) * 8)
	var sp *splash2.SampledProfile
	for i := 0; i < b.N; i++ {
		var err error
		sp, err = splash2.SampledStackDistances(s.tr, 64, sizes[len(sizes)-1],
			splash2.SampledOptions{Rate: 0.01, Seed: 1, ExactLines: splash2.DefaultExactLines})
		if err != nil {
			b.Fatal(err)
		}
		for _, cs := range sizes {
			if _, err := sp.EstMissRate(cs); err != nil {
				b.Fatal(err)
			}
			if _, _, err := sp.Band(cs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(refs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
	maxErr := 0.0
	for _, cs := range sizes {
		want, err := s.exact.MissRate(cs)
		if err != nil {
			b.Fatal(err)
		}
		got, err := sp.EstMissRate(cs)
		if err != nil {
			b.Fatal(err)
		}
		if d := math.Abs(got - want); d > maxErr {
			maxErr = d
		}
	}
	b.ReportMetric(maxErr, "max-abs-err")
}

func rateName(rate float64) string {
	switch rate {
	case 0.01:
		return "rate1pct"
	case 0.05:
		return "rate5pct"
	}
	return "rate30pct"
}
