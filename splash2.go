// Package splash2 is a from-scratch Go reproduction of the SPLASH-2
// benchmark suite and of the characterization methodology of "The SPLASH-2
// Programs: Characterization and Methodological Considerations" (Woo,
// Ohara, Torrie, Singh, Gupta — ISCA 1995).
//
// It provides:
//
//   - a simulated cache-coherent shared-address-space multiprocessor
//     (directory-based Illinois protocol, PRAM timing, miss classification
//     and traffic accounting),
//   - all twelve SPLASH-2 programs implemented as real parallel algorithms
//     against that machine, and
//   - the characterization engine that regenerates every table and figure
//     of the paper's evaluation.
//
// # Quick start
//
//	m, _ := splash2.NewMachine(splash2.Config{Procs: 8})
//	r, _ := splash2.Build("fft", m, nil)
//	r.Run(m)
//	st := m.Snapshot()
//	fmt.Printf("miss rate %.2f%%\n", 100*st.Mem.MissRate())
//
// The higher-level experiment drivers (Table1, Speedups, WorkingSets,
// Traffic, LineSizeSweep, Report) run whole parameter sweeps; see
// cmd/characterize for the full reproduction.
package splash2

import (
	"io"
	"time"

	"splash2/internal/apps"
	_ "splash2/internal/apps/all"
	"splash2/internal/core"
	"splash2/internal/fault"
	"splash2/internal/mach"
	"splash2/internal/memsys"
	"splash2/internal/runner"
)

// Machine configuration and state. Zero-valued cache fields take the
// paper's defaults: 1 MB 4-way set-associative caches with 64-byte lines
// and 8-byte overhead packets.
type (
	// Config describes a simulated machine.
	Config = mach.Config
	// Machine is a simulated multiprocessor.
	Machine = mach.Machine
	// Stats is a measurement snapshot.
	Stats = mach.Stats
	// Counters are per-processor event counts (Table 1 columns).
	Counters = mach.Counters
	// MemStats are the memory-system counters (misses, traffic).
	MemStats = memsys.Stats
)

// Memory models for Config.MemModel.
const (
	// FullMem simulates caches, directory, and traffic.
	FullMem = mach.FullMem
	// CountOnly skips cache simulation (PRAM timing is unaffected).
	CountOnly = mach.CountOnly
)

// FullyAssoc selects a fully associative cache in Config.Assoc.
const FullyAssoc = memsys.FullyAssoc

// Miss kinds (indices into memsys.ProcStats.Misses).
const (
	MissCold     = memsys.MissCold
	MissTrue     = memsys.MissTrue
	MissFalse    = memsys.MissFalse
	MissCapacity = memsys.MissCapacity
)

// NewMachine creates a simulated multiprocessor.
func NewMachine(cfg Config) (*Machine, error) { return mach.New(cfg) }

// AggregateCounters sums per-processor counters.
func AggregateCounters(cs []Counters) Counters { return mach.Aggregate(cs) }

// Programs lists the registered SPLASH-2 program names.
func Programs() []string { return apps.Names() }

// Program returns a registered program's metadata.
func Program(name string) (*apps.App, error) { return apps.Get(name) }

// Runner is a configured program instance.
type Runner = apps.Runner

// Build constructs a program on a machine with option overrides (missing
// options take the program's scaled defaults).
func Build(name string, m *Machine, opts map[string]int) (Runner, error) {
	return apps.BuildWithDefaults(name, m, opts)
}

// Experiment drivers (one per paper table/figure) and their results.
type (
	// RunResult is one program execution under one configuration.
	RunResult = core.RunResult
	// Table1Row is the instruction-breakdown row of one program.
	Table1Row = core.Table1Row
	// SpeedupCurve is a Figure-1 speedup curve.
	SpeedupCurve = core.SpeedupCurve
	// SyncProfile is a Figure-2 synchronization profile.
	SyncProfile = core.SyncProfile
	// MissCurve is a Figure-3 miss-rate-vs-cache-size curve.
	MissCurve = core.MissCurve
	// Table2Row is a working-set summary row.
	Table2Row = core.Table2Row
	// TrafficPoint is a Figure-4/5/6 traffic breakdown point.
	TrafficPoint = core.TrafficPoint
	// Table3Row is a comm-to-comp growth row.
	Table3Row = core.Table3Row
	// LineSizePoint is a Figure-7/8 spatial-locality point.
	LineSizePoint = core.LineSizePoint
	// ReportOptions configures the full characterization.
	ReportOptions = core.ReportOptions
	// Scale selects default or sweep problem sizes.
	Scale = core.Scale
	// ExecMode selects how full-memory experiments execute (live inline
	// simulation, or record-then-replay via the trace engine).
	ExecMode = core.ExecMode
	// Results bundles a full characterization for machine-readable export.
	Results = core.Results
	// PruneAdvice is the §5 operating-point recommendation for one program.
	PruneAdvice = core.PruneAdvice
	// Trace is a recorded reference stream replayable through any cache
	// configuration (see RecordTrace / ReplayTrace).
	Trace = memsys.Trace
	// TraceSource is a replayable reference stream: an in-memory *Trace
	// or an out-of-core *TraceFile streaming a v2 container from disk.
	TraceSource = memsys.TraceSource
	// TraceMeta is the one-pass stream summary of a TraceSource.
	TraceMeta = memsys.TraceMeta
	// TraceFile is an out-of-core v2 trace opened for block streaming
	// and (proc, epoch) random access (see OpenTraceFile).
	TraceFile = memsys.TraceFile
	// MemConfig configures a memory system for trace replay.
	MemConfig = memsys.Config
	// StackProfile is a one-pass LRU stack-distance profile of a trace:
	// it answers the exact miss count of a fully-associative cache of any
	// profiled size without further replays (see StackDistances).
	StackProfile = memsys.StackProfile
	// SampledProfile is a SHARDS-sampled stack-distance profile: the
	// estimated twin of StackProfile, with confidence bands (see
	// SampledStackDistances).
	SampledProfile = memsys.SampledProfile
	// SampledOptions configures the sampled estimator (rate, seed,
	// adaptive budget, exact-window width).
	SampledOptions = memsys.SampledOptions
	// SampledCurve is one program's estimated working-set curve with
	// bands (see WorkingSetsSampled).
	SampledCurve = core.SampledCurve
)

// DefaultExactLines is the default exact-window width of the sampled
// estimator: capacities up to DefaultExactLines cache lines are answered
// exactly rather than estimated.
const DefaultExactLines = memsys.DefaultExactLines

// Scales.
const (
	DefaultScale = core.DefaultScale
	SweepScale   = core.SweepScale
	// PaperScale selects the paper's published problem sizes (slow).
	PaperScale = core.PaperScale
)

// Execution modes for ReportOptions.ExecMode.
const (
	// LiveExec simulates the memory system inline with execution.
	LiveExec = core.LiveExec
	// RecordReplayExec records each program's reference trace once
	// (count-only, batched capture) and replays it per configuration.
	RecordReplayExec = core.RecordReplayExec
)

// Suite is the canonical program order of the paper's tables.
var Suite = core.Suite

// RunProgram executes one program on a fresh machine and returns its
// measurement snapshot.
func RunProgram(name string, cfg Config, opts map[string]int) (*RunResult, error) {
	return core.Run(name, cfg, opts)
}

// RunProgramVerified additionally runs the program's correctness check.
func RunProgramVerified(name string, cfg Config, opts map[string]int) (*RunResult, error) {
	return core.RunVerified(name, cfg, opts)
}

// Table1 measures the instruction breakdown (paper Table 1).
func Table1(appNames []string, procs int, scale Scale) ([]Table1Row, error) {
	return core.Table1(appNames, procs, scale)
}

// Speedups measures PRAM speedups (paper Figure 1).
func Speedups(appNames []string, procList []int, scale Scale) ([]SpeedupCurve, error) {
	return core.Speedups(appNames, procList, scale)
}

// SyncProfiles measures synchronization time (paper Figure 2).
func SyncProfiles(appNames []string, procs int, scale Scale) ([]SyncProfile, error) {
	return core.SyncProfiles(appNames, procs, scale)
}

// WorkingSets sweeps miss rate vs cache size/associativity (Figure 3).
func WorkingSets(appNames []string, procs int, cacheSizes, assocs []int, scale Scale) ([]MissCurve, error) {
	return core.WorkingSets(appNames, procs, cacheSizes, assocs, scale)
}

// Table2 derives working-set rows from measured 4-way miss curves.
func Table2(curves []MissCurve) []Table2Row { return core.Table2(curves) }

// Traffic measures a program's traffic breakdown (Figures 4–6).
func Traffic(app string, procList []int, cacheSize int, scale Scale, opts map[string]int) ([]TrafficPoint, error) {
	return core.Traffic(app, procList, cacheSize, scale, opts)
}

// Table3 measures comm-to-comp growth between two processor counts.
func Table3(appNames []string, lowP, highP int, scale Scale) ([]Table3Row, error) {
	return core.Table3(appNames, lowP, highP, scale)
}

// LineSizeSweep measures spatial locality and false sharing (Figures 7–8).
func LineSizeSweep(app string, procs, cacheSize int, lineSizes []int, scale Scale) ([]LineSizePoint, error) {
	return core.LineSizeSweep(app, procs, cacheSize, lineSizes, scale)
}

// DefaultCacheSizes returns the paper's 1 KB–1 MB sweep points.
func DefaultCacheSizes() []int { return core.DefaultCacheSizes() }

// DefaultCacheDir returns the default on-disk result-cache root
// (<user cache dir>/splash2). Experiment drivers use it when
// ReportOptions.CacheDir is set; cached results carry the suite version
// in their keys and are invalidated by bumping it.
func DefaultCacheDir() (string, error) { return core.DefaultCacheDir() }

// DefaultLineSizes returns the paper's 8 B–256 B sweep points.
func DefaultLineSizes() []int { return core.DefaultLineSizes() }

// Crash consistency and multi-process sharing. Runs with a cache
// directory hold cross-process work leases (so concurrent processes
// coalesce expensive jobs instead of duplicating them) and append a
// durable run journal under <cache-dir>/journal. After a crash, Resume
// reports what the dead run had finished and reclaims its leases and
// temp artifacts; the result cache then supplies everything it
// completed.
type (
	// ResumeReport describes what a resume pass found and reclaimed.
	ResumeReport = core.ResumeReport
	// RunSummary condenses one run journal (crash forensics).
	RunSummary = runner.RunSummary
)

// DefaultLeaseTTL is the default cross-process work-lease expiry
// (ReportOptions.LeaseTTL = 0); a crashed lease holder delays
// contenders on its key by at most this long.
const DefaultLeaseTTL = runner.DefaultLeaseTTL

// Resume scans a cache directory for crashed runs: dead journals are
// reported and marked resumed, and orphaned leases/temp/spill files are
// swept. Run the characterization normally afterwards — cache hits are
// the resume.
func Resume(cacheDir string, leaseTTL time.Duration) (*ResumeReport, error) {
	return core.Resume(cacheDir, leaseTTL)
}

// Fault tolerance and failure semantics. A characterization run in
// keep-going mode (ReportOptions.KeepGoing) completes past failed
// experiments: lost rows render as FAILED(...) placeholders, and the
// run ends with a failure manifest plus an ErrFailures-wrapped error.
type (
	// FaultInjector is the deterministic, rule-based fault injector
	// threaded through experiment execution and cache/trace I/O
	// (ReportOptions.Fault). Chaos tests and the -fault CLI flags use it.
	FaultInjector = fault.Injector
	// FaultRule describes one injection: a wildcard pattern over
	// operation names ("job:<label>", "cache.get:<key>",
	// "cache.put:<key>", "trace.read", "trace.read.footer",
	// "trace.read.block:<i>", "lease.acquire:<key>", "journal.append",
	// "sample.estimate:<app>"), an action (error, panic, delay, short
	// read, crash) and an occurrence.
	FaultRule = fault.Rule
	// FailureRecord is one lost experiment in a failure manifest.
	FailureRecord = core.FailureRecord
	// FailureManifest is the end-of-run account of lost experiments.
	FailureManifest = core.FailureManifest
)

// ErrFailures marks a keep-going characterization that completed but
// lost experiments; detect it with errors.Is to distinguish degraded
// completion from a hard error.
var ErrFailures = core.ErrFailures

// NewFaultInjector builds a deterministic injector: the seed chooses
// the firing occurrence of rules with a negative Nth.
func NewFaultInjector(seed int64, rules ...FaultRule) *FaultInjector {
	return fault.New(seed, rules...)
}

// ParseFaultRules parses the compact rule syntax of the -fault CLI
// flag: "action[(arg)][@nth]=pattern", ';'-separated — e.g.
// "error=job:run fft*;delay(50ms)@2=job:wsweep*".
func ParseFaultRules(spec string) ([]FaultRule, error) { return fault.Parse(spec) }

// Characterize runs the complete characterization (all tables and
// figures), writing formatted results to w.
func Characterize(w io.Writer, o ReportOptions) error { return core.Report(w, o) }

// CollectResults runs the full characterization and returns raw data for
// JSON/CSV export — the machine-readable twin of Characterize.
func CollectResults(o ReportOptions) (*Results, error) { return core.CollectResults(o) }

// Prune derives the §5 operating-point advice from a measured miss curve:
// which cache sizes are knees, which are representative, which redundant.
func Prune(c MissCurve) PruneAdvice { return core.Prune(c) }

// BandwidthMBs converts a traffic point into the §6 per-processor
// bandwidth estimate at the given issue rate (ops/s).
func BandwidthMBs(t TrafficPoint, rateHz float64) float64 { return core.BandwidthMBs(t, rateHz) }

// RecordTrace executes one program while capturing its global reference
// stream; the trace replays through arbitrary cache configurations.
func RecordTrace(app string, procs int, opts map[string]int) (*Trace, Stats, error) {
	return core.RecordApp(app, procs, opts)
}

// ReplayTrace feeds a recorded reference stream through a fresh memory
// system.
func ReplayTrace(src TraceSource, cfg MemConfig) (MemStats, error) { return memsys.Replay(src, cfg) }

// ReplayTraceMulti feeds one recorded reference stream through a fresh
// memory system per configuration in a single fused pass: the stream is
// decoded once for the whole sweep, block by block with O(block buffer)
// peak memory. The results are, position by position, exactly what
// per-configuration ReplayTrace calls return.
func ReplayTraceMulti(src TraceSource, cfgs []MemConfig) ([]MemStats, error) {
	return memsys.ReplayMulti(src, cfgs)
}

// StackDistances computes a one-pass Mattson stack-distance profile of a
// recorded reference stream at the given line size: one traversal yields
// the exact miss counts of every fully-associative LRU cache size up to
// maxCacheSize, coherence invalidations included.
func StackDistances(src TraceSource, lineSize, maxCacheSize int) (*StackProfile, error) {
	return memsys.StackDistances(src, lineSize, maxCacheSize)
}

// SampledStackDistances estimates the stack-distance profile from a
// spatially-hashed sample of the stream (SHARDS): miss counts for every
// fully-associative size up to maxCacheSize, with 95% confidence bands,
// at a fraction of the exact pass's cost. At rate 1 the estimate is
// bit-identical to StackDistances.
func SampledStackDistances(src TraceSource, lineSize, maxCacheSize int, opt SampledOptions) (*SampledProfile, error) {
	return memsys.SampledStackDistances(src, lineSize, maxCacheSize, opt)
}

// EpochWindow restricts a recorded stream to an epoch range [lo, hi]:
// the returned view replays only those epochs' references. A TraceFile
// view selects blocks through the index, so out-of-range blocks are
// never read from disk.
func EpochWindow(src TraceSource, lo, hi uint64) (TraceSource, error) {
	return memsys.EpochWindow(src, lo, hi)
}

// WorkingSetsSampled estimates each program's fully-associative
// working-set curve by sampled reuse-distance analysis — the cheap,
// banded preview of WorkingSets' exact sweep.
func WorkingSetsSampled(appNames []string, procs int, cacheSizes []int, rate float64, seed uint64, scale Scale) ([]SampledCurve, error) {
	return core.WorkingSetsSampled(appNames, procs, cacheSizes, rate, seed, scale)
}

// OpenTraceFile opens an on-disk v2 trace for out-of-core streaming:
// the index footer is parsed at open, event blocks stream from disk
// during replay. Convert a v1 trace with `trace convert`.
func OpenTraceFile(path string) (*TraceFile, error) { return memsys.OpenTraceFile(path, nil) }

// ReplaySweep replays one recorded trace through each configuration,
// scheduling the replays across workers goroutines (≤ 0 selects
// GOMAXPROCS). Replay is read-only on the trace — an out-of-core
// TraceFile streams its blocks independently per worker — and results
// are identical to serial ReplayTrace calls.
func ReplaySweep(src TraceSource, cfgs []MemConfig, workers int) ([]MemStats, error) {
	return core.ReplaySweep(src, cfgs, workers)
}
