// Benchmarks regenerating each table and figure of the paper's evaluation
// (reduced sweep-scale problems so a full -bench=. run stays tractable),
// plus the ablation benches called out in DESIGN.md. Each benchmark
// reports domain-specific metrics alongside ns/op — miss rates, traffic
// per operation, speedups — so `go test -bench=.` reproduces the shape of
// the paper's results.
package splash2_test

import (
	"io"
	"runtime"
	"testing"

	"splash2"
	"splash2/internal/memsys"
)

// benchApps is a representative cross-section used by the per-figure
// benches: two kernels, a grid application, and an irregular application.
var benchApps = []string{"fft", "lu", "ocean", "barnes"}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := splash2.Table1(benchApps, 8, splash2.SweepScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[0].Instr), "fft-instrs")
		}
	}
}

func BenchmarkFigure1Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := splash2.Speedups(benchApps, []int{1, 4, 16}, splash2.SweepScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range curves {
				b.ReportMetric(c.Speedup[len(c.Speedup)-1], c.App+"-speedup@16")
			}
		}
	}
}

func BenchmarkFigure2Sync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		profs, err := splash2.SyncProfiles(benchApps, 8, splash2.SweepScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(profs[1].AvgPct, "lu-sync-pct")
		}
	}
}

func BenchmarkFigure3WorkingSets(b *testing.B) {
	sizes := []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
	for i := 0; i < b.N; i++ {
		curves, err := splash2.WorkingSets(benchApps, 8, sizes, []int{4}, splash2.SweepScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			knee, _ := curves[0].Knee()
			b.ReportMetric(float64(knee)/1024, "fft-knee-KB")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	sizes := []int{4 << 10, 64 << 10, 1 << 20}
	curves, err := splash2.WorkingSets(benchApps, 8, sizes, []int{4}, splash2.SweepScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := splash2.Table2(curves)
		if len(rows) == 0 {
			b.Fatal("no table 2 rows")
		}
	}
}

func BenchmarkFigure4Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := splash2.Traffic("fft", []int{1, 4, 8}, 1<<20, splash2.SweepScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[2].Remote(), "B-per-flop@8")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := splash2.Table3([]string{"ocean", "fft"}, 2, 8, splash2.SweepScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].MeasuredGrow, "ocean-commcomp-growth")
		}
	}
}

func BenchmarkFigure5Ocean(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small, err := splash2.Traffic("ocean", []int{8}, 1<<20, splash2.SweepScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		big, err := splash2.Traffic("ocean", []int{8}, 1<<20, splash2.SweepScale, map[string]int{"n": 64})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(small[0].TrueSharing, "small-trueshare")
			b.ReportMetric(big[0].TrueSharing, "big-trueshare")
		}
	}
}

func BenchmarkFigure6SmallCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := splash2.Traffic("ocean", []int{8}, 16<<10, splash2.SweepScale, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[0].LocalData+pts[0].Remote(), "total-B-per-flop")
		}
	}
}

func BenchmarkFigure7LineSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := splash2.LineSizeSweep("radix", 8, 1<<20, []int{16, 64, 256}, splash2.SweepScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[2].FalsePct, "false-pct@256B")
		}
	}
}

func BenchmarkFigure8LineTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := splash2.LineSizeSweep("lu", 8, 1<<20, []int{16, 64, 256}, splash2.SweepScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[0].RemoteData+pts[0].LocalData, "data-B-per-flop@16B")
		}
	}
}

// BenchmarkMemsysThroughput tracks raw reference throughput of the memory
// system (the global-lock design decision in DESIGN.md).
func BenchmarkMemsysThroughput(b *testing.B) {
	sys, err := memsys.New(memsys.Config{Procs: 8, CacheSize: 64 << 10, Assoc: 4, LineSize: 64, OverheadBytes: 8},
		func(line uint64) int { return int(line % 8) })
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Access(i%8, memsys.Addr((i*8)%(1<<16)), i%4 == 0)
	}
}

// BenchmarkAblationNoHints measures the invalidation-overhead inflation
// when replacement hints are disabled (stale directory sharer lists).
// Both configurations replay one recorded trace, so the comparison is
// exact rather than scheduling-dependent.
func BenchmarkAblationNoHints(b *testing.B) {
	tr, _, err := splash2.RecordTrace("ocean", 8, map[string]int{"n": 32, "steps": 2, "vcycles": 2})
	if err != nil {
		b.Fatal(err)
	}
	run := func(noHints bool) float64 {
		st, err := splash2.ReplayTrace(tr, splash2.MemConfig{
			Procs: 8, CacheSize: 16 << 10, Assoc: 2, LineSize: 64, NoReplacementHints: noHints,
		})
		if err != nil {
			b.Fatal(err)
		}
		return float64(st.Traffic.RemoteOverhead)
	}
	b.ResetTimer()
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(false)
		without = run(true)
	}
	b.ReportMetric(without/with, "overhead-inflation")
}

// BenchmarkAblationLULayout contrasts the §3 block-contiguous layout
// against a global row-major matrix: the latter interleaves blocks on
// cache lines (false sharing + extra misses).
func BenchmarkAblationLULayout(b *testing.B) {
	run := func(layout int) float64 {
		cfg := splash2.Config{Procs: 8, CacheSize: 1 << 20, Assoc: 4, LineSize: 64}
		// b=4 so a block row (32 B) is half a cache line: the row-major
		// layout interleaves different blocks on every line.
		res, err := splash2.RunProgram("lu", cfg, map[string]int{"n": 64, "b": 4, "layout": layout})
		if err != nil {
			b.Fatal(err)
		}
		return 100 * res.Stats.Mem.MissRate()
	}
	var blocked, rowmajor float64
	for i := 0; i < b.N; i++ {
		blocked = run(0)
		rowmajor = run(1)
	}
	b.ReportMetric(blocked, "miss-pct-blocked")
	b.ReportMetric(rowmajor, "miss-pct-rowmajor")
}

// BenchmarkAblationOceanPartition contrasts square-like subgrids against
// SPLASH-1-style column strips (§3: perimeter-to-area communication).
func BenchmarkAblationOceanPartition(b *testing.B) {
	run := func(columns int) float64 {
		cfg := splash2.Config{Procs: 8, CacheSize: 1 << 20, Assoc: 4, LineSize: 64}
		res, err := splash2.RunProgram("ocean", cfg, map[string]int{"n": 32, "steps": 1, "vcycles": 2, "columns": columns})
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.Stats.Mem.Traffic.TrueSharingData)
	}
	var square, columns float64
	for i := 0; i < b.N; i++ {
		square = run(0)
		columns = run(1)
	}
	b.ReportMetric(columns/square, "comm-inflation-columns")
}

// BenchmarkAblationWaterLocking contrasts the §3 improved locking strategy
// (private accumulation) against SPLASH-1 per-pair locking.
func BenchmarkAblationWaterLocking(b *testing.B) {
	run := func(oldlock int) float64 {
		cfg := splash2.Config{Procs: 8, CacheSize: 1 << 20, Assoc: 4, LineSize: 64}
		res, err := splash2.RunProgram("water-nsq", cfg, map[string]int{"n": 64, "steps": 1, "oldlock": oldlock})
		if err != nil {
			b.Fatal(err)
		}
		return float64(splash2.AggregateCounters(res.Stats.Procs).Locks)
	}
	var newLocks, oldLocks float64
	for i := 0; i < b.N; i++ {
		newLocks = run(0)
		oldLocks = run(1)
	}
	b.ReportMetric(oldLocks/newLocks, "lock-inflation-oldstyle")
}

// BenchmarkTraceReplay measures trace-replay throughput (the sweep
// acceleration path used by Figures 3, 7 and 8).
func BenchmarkTraceReplay(b *testing.B) {
	tr, _, err := splash2.RecordTrace("fft", 8, map[string]int{"n": 1024})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := splash2.ReplayTrace(tr, splash2.MemConfig{Procs: 8, CacheSize: 64 << 10, Assoc: 4, LineSize: 64}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()), "refs-per-replay")
}

// benchSweepTrace records the fft reference stream the one-pass-sweep
// benches replay, and returns it with the paper's 1 KB–1 MB sweep
// configurations at 64-byte lines.
func benchSweepTrace(b *testing.B, assoc int) (*splash2.Trace, []splash2.MemConfig) {
	b.Helper()
	tr, _, err := splash2.RecordTrace("fft", 8, map[string]int{"n": 1024})
	if err != nil {
		b.Fatal(err)
	}
	var cfgs []splash2.MemConfig
	for _, cs := range splash2.DefaultCacheSizes() {
		cfgs = append(cfgs, splash2.MemConfig{Procs: 8, CacheSize: cs, Assoc: assoc, LineSize: 64})
	}
	return tr, cfgs
}

// BenchmarkReplay is the serial baseline for a Figure-3 column: one
// full trace replay per cache size.
func BenchmarkReplay(b *testing.B) {
	tr, cfgs := benchSweepTrace(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			if _, err := splash2.ReplayTrace(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(cfgs)), "configs")
}

// BenchmarkReplayMulti replays the same sweep fused: the trace is
// decoded once and every configuration's system is fed per reference.
func BenchmarkReplayMulti(b *testing.B) {
	tr, cfgs := benchSweepTrace(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := splash2.ReplayTraceMulti(tr, cfgs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cfgs)), "configs")
}

// BenchmarkReplayFullyAssoc is the serial baseline the stack-distance
// pass replaces: one fully-associative replay per cache size.
func BenchmarkReplayFullyAssoc(b *testing.B) {
	tr, cfgs := benchSweepTrace(b, splash2.FullyAssoc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			if _, err := splash2.ReplayTrace(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(cfgs)), "configs")
}

// BenchmarkStackDistance answers the whole fully-associative sweep from
// one stack-distance pass over the trace.
func BenchmarkStackDistance(b *testing.B) {
	tr, cfgs := benchSweepTrace(b, splash2.FullyAssoc)
	maxSize := cfgs[len(cfgs)-1].CacheSize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := splash2.StackDistances(tr, 64, maxSize)
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range cfgs {
			if _, err := sp.MissRate(cfg.CacheSize); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(cfgs)), "configs")
}

// benchReportOptions is the two-program characterization subset used by
// the end-to-end pipeline benches (the cost of cmd/characterize).
func benchReportOptions() splash2.ReportOptions {
	return splash2.ReportOptions{
		Apps:       []string{"fft", "lu"},
		Procs:      4,
		ProcList:   []int{1, 4},
		Scale:      splash2.SweepScale,
		CacheSizes: []int{16 << 10, 1 << 20},
		LineSizes:  []int{64},
	}
}

// BenchmarkFullReport exercises the complete characterization pipeline
// serially (one worker, no result cache) — the baseline for
// BenchmarkCharacterizeParallel.
func BenchmarkFullReport(b *testing.B) {
	o := benchReportOptions()
	o.Workers = 1
	for i := 0; i < b.N; i++ {
		if err := splash2.Characterize(io.Discard, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterizeParallel runs the same pipeline with the
// experiment scheduler at full width (GOMAXPROCS workers, no result
// cache so every job really executes). Compare against
// BenchmarkFullReport for the parallel speedup on this host.
func BenchmarkCharacterizeParallel(b *testing.B) {
	o := benchReportOptions()
	o.Workers = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		if err := splash2.Characterize(io.Discard, o); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(o.Workers), "workers")
}
