// Trace-container benchmarks: the columnar v2 format against the flat
// v1 format on a recorded suite trace — encoded size (bytes/reference),
// decode throughput, and out-of-core streaming replay against the
// in-memory path. The acceptance numbers live in BENCH_tracev2.json:
// v2 must be ≥ 2x smaller per reference with sequential decode within
// 1.5x of v1's flat read.
package splash2_test

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"splash2"
	"splash2/internal/memsys"
)

// traceV2Bench holds one recorded suite trace in both serialized forms.
type traceV2Bench struct {
	tr *splash2.Trace
	v1 []byte
	v2 []byte
}

var traceV2State *traceV2Bench

// benchTraceV2 records the fft suite trace once per process (the same
// problem the replay benches use) and serializes it both ways.
func benchTraceV2(b *testing.B) *traceV2Bench {
	b.Helper()
	if traceV2State != nil {
		return traceV2State
	}
	tr, _, err := splash2.RecordTrace("fft", 8, map[string]int{"n": 4096})
	if err != nil {
		b.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if _, err := tr.WriteTo(&v1); err != nil {
		b.Fatal(err)
	}
	if _, err := tr.WriteV2(&v2); err != nil {
		b.Fatal(err)
	}
	traceV2State = &traceV2Bench{tr: tr, v1: v1.Bytes(), v2: v2.Bytes()}
	return traceV2State
}

// BenchmarkTraceV2Encode measures serialization throughput per format
// and reports the headline size metrics: bytes per reference for each
// container and the v1/v2 compression ratio.
func BenchmarkTraceV2Encode(b *testing.B) {
	s := benchTraceV2(b)
	refs := float64(s.tr.Len())
	b.Run("v1", func(b *testing.B) {
		b.SetBytes(int64(len(s.v1)))
		for i := 0; i < b.N; i++ {
			if _, err := s.tr.WriteTo(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(s.v1))/refs, "bytes/ref")
	})
	b.Run("v2", func(b *testing.B) {
		b.SetBytes(int64(len(s.v2)))
		for i := 0; i < b.N; i++ {
			if _, err := s.tr.WriteV2(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(s.v2))/refs, "bytes/ref")
		b.ReportMetric(float64(len(s.v1))/float64(len(s.v2)), "x-smaller-than-v1")
	})
}

// BenchmarkTraceV2Decode measures full-trace sequential decode: v1's
// flat 8-bytes-per-event read against v2's varint+bitmap reconstruction
// (the acceptance bound: v2 within 1.5x of v1). Mrefs/s is the
// format-independent comparison; MB/s follows each container's size.
func BenchmarkTraceV2Decode(b *testing.B) {
	s := benchTraceV2(b)
	decode := func(b *testing.B, data []byte) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := memsys.ReadTrace(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(s.tr.Len())*float64(b.N)/1e6/b.Elapsed().Seconds(), "Mrefs/s")
	}
	b.Run("v1", func(b *testing.B) { decode(b, s.v1) })
	b.Run("v2", func(b *testing.B) { decode(b, s.v2) })
}

// BenchmarkTraceV2StreamReplay runs the paper's 11-size cache sweep from
// the out-of-core TraceFile and from the in-memory trace: the cost of
// O(block buffer) streaming versus a fully materialized stream.
func BenchmarkTraceV2StreamReplay(b *testing.B) {
	s := benchTraceV2(b)
	var cfgs []splash2.MemConfig
	for _, cs := range splash2.DefaultCacheSizes() {
		cfgs = append(cfgs, splash2.MemConfig{Procs: 8, CacheSize: cs, Assoc: 4, LineSize: 64})
	}
	path := filepath.Join(b.TempDir(), "bench.sp2t")
	if err := os.WriteFile(path, s.v2, 0o644); err != nil {
		b.Fatal(err)
	}
	tf, err := splash2.OpenTraceFile(path)
	if err != nil {
		b.Fatal(err)
	}
	defer tf.Close()

	b.Run("in-memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := splash2.ReplayTraceMulti(s.tr, cfgs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(cfgs)), "configs")
	})
	b.Run("streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := splash2.ReplayTraceMulti(tf, cfgs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(cfgs)), "configs")
	})
}
