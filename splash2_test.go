package splash2_test

import (
	"bytes"
	"strings"
	"testing"

	"splash2"
)

func TestProgramsComplete(t *testing.T) {
	names := splash2.Programs()
	if len(names) != 12 {
		t.Fatalf("suite has %d programs, want 12: %v", len(names), names)
	}
	for _, want := range splash2.Suite {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("program %s missing from registry", want)
		}
	}
}

func TestEveryProgramRunsAndVerifiesOnPublicAPI(t *testing.T) {
	// Small-but-real configurations for a full-suite verification pass.
	overrides := map[string]map[string]int{
		"barnes":    {"n": 128, "steps": 1},
		"cholesky":  {"nblocks": 10, "b": 4},
		"fft":       {"n": 256},
		"fmm":       {"n": 128, "steps": 1},
		"lu":        {"n": 32, "b": 4},
		"ocean":     {"n": 16, "steps": 1, "vcycles": 4},
		"radiosity": {"panels": 1, "iters": 2},
		"radix":     {"n": 1024, "radix": 32, "maxkey": 1 << 10},
		"raytrace":  {"width": 16, "spheres": 8, "grid": 4, "tile": 4},
		"volrend":   {"dim": 16, "width": 16, "frames": 1, "tile": 4},
		"water-nsq": {"n": 64, "steps": 1},
		"water-sp":  {"n": 125, "steps": 1},
	}
	for _, name := range splash2.Suite {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := splash2.Config{Procs: 4, CacheSize: 64 << 10, Assoc: 4, LineSize: 64}
			res, err := splash2.RunProgramVerified(name, cfg, overrides[name])
			if err != nil {
				t.Fatal(err)
			}
			a := splash2.AggregateCounters(res.Stats.Procs)
			if a.Instr == 0 || res.Stats.Time == 0 {
				t.Fatalf("empty measurement: %+v", a)
			}
			mem := res.Stats.Mem.Aggregate()
			if mem.Refs() == 0 {
				t.Fatal("no simulated references")
			}
		})
	}
}

func TestProgramMetadata(t *testing.T) {
	kernels := map[string]bool{"cholesky": true, "fft": true, "lu": true, "radix": true}
	for _, name := range splash2.Suite {
		a, err := splash2.Program(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Kernel != kernels[name] {
			t.Errorf("%s: kernel=%v, want %v", name, a.Kernel, kernels[name])
		}
		if a.Doc == "" || len(a.Defaults) == 0 {
			t.Errorf("%s: missing metadata", name)
		}
	}
}

func TestDefaultSweepPoints(t *testing.T) {
	cs := splash2.DefaultCacheSizes()
	if cs[0] != 1<<10 || cs[len(cs)-1] != 1<<20 || len(cs) != 11 {
		t.Fatalf("cache sizes %v", cs)
	}
	ls := splash2.DefaultLineSizes()
	if ls[0] != 8 || ls[len(ls)-1] != 256 {
		t.Fatalf("line sizes %v", ls)
	}
}

func TestCharacterizeSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow")
	}
	var buf bytes.Buffer
	err := splash2.Characterize(&buf, splash2.ReportOptions{
		Apps:       []string{"radix"},
		Procs:      4,
		ProcList:   []int{1, 4},
		Scale:      splash2.SweepScale,
		CacheSizes: []int{16 << 10, 1 << 20},
		LineSizes:  []int{64},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, section := range []string{"Table 1", "Figure 1", "Figure 2", "Figure 3", "Table 2", "Figure 4", "Table 3", "Figure 5", "Figure 6", "Figure 7", "Figure 8"} {
		if !strings.Contains(out, section) {
			t.Fatalf("report missing %q", section)
		}
	}
}

func TestNoHintsAblationIncreasesOverheadOrEqual(t *testing.T) {
	// Replay one recorded trace with and without hints so the reference
	// stream is identical for both configurations.
	tr, _, err := splash2.RecordTrace("ocean", 4, map[string]int{"n": 16, "steps": 2, "vcycles": 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func(noHints bool) uint64 {
		st, err := splash2.ReplayTrace(tr, splash2.MemConfig{
			Procs: 4, CacheSize: 8 << 10, Assoc: 2, LineSize: 64, NoReplacementHints: noHints,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Traffic.RemoteOverhead
	}
	with := run(false)
	without := run(true)
	if without < with {
		t.Fatalf("disabling replacement hints reduced overhead: %d < %d", without, with)
	}
}
